"""Unit + property tests for the contention signature model (§7)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hockney import HockneyParams
from repro.core.bounds import alltoall_lower_bound
from repro.core.signature import (
    AlltoallSample,
    ContentionSignature,
    fit_signature,
)
from repro.exceptions import FittingError

HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)


def synthetic_samples(gamma, delta, threshold, sizes, n=40, delta_mode="per_round"):
    samples = []
    for m in sizes:
        lb = alltoall_lower_bound(n, m, HOCKNEY)
        time = lb * gamma
        if m >= threshold:
            time += delta * (n - 1) if delta_mode == "per_round" else delta
        samples.append(
            AlltoallSample(n_processes=n, msg_size=m, mean_time=time,
                           std_time=time * 0.01, reps=10)
        )
    return samples


class TestSignaturePredict:
    def test_below_threshold_pure_gamma(self):
        sig = ContentionSignature(
            gamma=2.0, delta=5e-3, threshold=8192, hockney=HOCKNEY
        )
        m = 1024
        assert sig.predict(10, m) == pytest.approx(
            alltoall_lower_bound(10, m, HOCKNEY) * 2.0
        )

    def test_above_threshold_adds_per_round_delta(self):
        sig = ContentionSignature(
            gamma=2.0, delta=5e-3, threshold=8192, hockney=HOCKNEY
        )
        m = 65536
        expected = alltoall_lower_bound(10, m, HOCKNEY) * 2.0 + 9 * 5e-3
        assert sig.predict(10, m) == pytest.approx(expected)

    def test_global_delta_mode(self):
        sig = ContentionSignature(
            gamma=2.0, delta=5e-3, threshold=8192, hockney=HOCKNEY,
            delta_mode="global",
        )
        m = 65536
        expected = alltoall_lower_bound(10, m, HOCKNEY) * 2.0 + 5e-3
        assert sig.predict(10, m) == pytest.approx(expected)

    def test_vectorised_grid(self):
        sig = ContentionSignature(
            gamma=1.5, delta=0.0, threshold=0, hockney=HOCKNEY
        )
        n = np.array([[4.0], [8.0]])
        m = np.array([[1e3, 1e6]])
        assert sig.predict(n, m).shape == (2, 2)

    def test_lower_bound_is_gamma_one(self):
        sig = ContentionSignature(
            gamma=3.0, delta=1e-3, threshold=1024, hockney=HOCKNEY
        )
        assert sig.lower_bound(10, 4096) == pytest.approx(
            alltoall_lower_bound(10, 4096, HOCKNEY)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionSignature(gamma=0.0, delta=0.0, threshold=0, hockney=HOCKNEY)
        with pytest.raises(ValueError):
            ContentionSignature(gamma=1.0, delta=-1.0, threshold=0, hockney=HOCKNEY)
        with pytest.raises(ValueError):
            ContentionSignature(
                gamma=1.0, delta=0.0, threshold=0, hockney=HOCKNEY,
                delta_mode="banana",
            )


class TestFitting:
    SIZES = [2048, 8192, 65536, 262144, 1048576]

    def test_recovers_synthetic_signature(self):
        samples = synthetic_samples(4.36, 4.93e-3, 8192, self.SIZES)
        fit = fit_signature(samples, HOCKNEY)
        assert fit.signature.gamma == pytest.approx(4.36, rel=1e-6)
        assert fit.signature.delta == pytest.approx(4.93e-3, rel=1e-6)
        assert fit.signature.threshold == 8192

    def test_explicit_threshold(self):
        samples = synthetic_samples(2.0, 3e-3, 8192, self.SIZES)
        fit = fit_signature(samples, HOCKNEY, threshold=8192)
        assert fit.signature.gamma == pytest.approx(2.0, rel=1e-6)

    def test_zero_delta_pruned(self):
        samples = synthetic_samples(2.5, 0.0, 10**9, self.SIZES)
        fit = fit_signature(samples, HOCKNEY)
        assert fit.signature.delta == 0.0
        assert fit.signature.threshold == 0

    def test_global_delta_mode_fit(self):
        samples = synthetic_samples(
            3.0, 0.25, 8192, self.SIZES, delta_mode="global"
        )
        fit = fit_signature(samples, HOCKNEY, delta_mode="global")
        assert fit.signature.gamma == pytest.approx(3.0, rel=1e-4)
        assert fit.signature.delta == pytest.approx(0.25, rel=1e-4)

    def test_requires_four_points(self):
        samples = synthetic_samples(2.0, 0.0, 10**9, [1024, 2048, 4096])
        with pytest.raises(FittingError, match="four"):
            fit_signature(samples, HOCKNEY)

    def test_noise_tolerance(self, rng):
        samples = []
        for m in self.SIZES * 2:
            lb = alltoall_lower_bound(40, m, HOCKNEY)
            time = lb * 3.0 * (1 + 0.03 * rng.standard_normal())
            samples.append(
                AlltoallSample(40, m, float(time), std_time=float(time) * 0.03,
                               reps=5)
            )
        fit = fit_signature(samples, HOCKNEY)
        assert fit.signature.gamma == pytest.approx(3.0, rel=0.1)

    def test_non_positive_gamma_rejected(self):
        # Times that decrease with message size while the affine column
        # soaks up the offset force the fitted slope gamma <= 0: not a
        # transmission curve, must be rejected.
        samples = [
            AlltoallSample(4, m, 10.0 / (i + 1), reps=1)
            for i, m in enumerate(self.SIZES)
        ]
        with pytest.raises(FittingError):
            fit_signature(samples, HOCKNEY, threshold=self.SIZES[0])

    def test_ols_method(self):
        samples = synthetic_samples(2.0, 1e-3, 8192, self.SIZES)
        fit = fit_signature(samples, HOCKNEY, method="ols")
        assert fit.signature.gamma == pytest.approx(2.0, rel=1e-6)

    def test_rss_by_threshold_recorded(self):
        samples = synthetic_samples(2.0, 1e-3, 8192, self.SIZES)
        fit = fit_signature(samples, HOCKNEY)
        assert 8192 in fit.rss_by_threshold
        assert fit.rss_by_threshold[8192] <= min(fit.rss_by_threshold.values()) + 1e-18


class TestFitProperties:
    @given(
        gamma=st.floats(min_value=1.0, max_value=8.0),
        delta_ms=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_exact_recovery_over_parameter_space(self, gamma, delta_ms):
        samples = synthetic_samples(
            gamma, delta_ms * 1e-3, 8192, TestFitting.SIZES
        )
        fit = fit_signature(samples, HOCKNEY)
        assert fit.signature.gamma == pytest.approx(gamma, rel=1e-5)
        assert fit.signature.delta == pytest.approx(delta_ms * 1e-3, rel=1e-4)

    @given(st.integers(min_value=3, max_value=48))
    def test_prediction_scales_with_n(self, n):
        sig = ContentionSignature(
            gamma=2.0, delta=1e-3, threshold=0, hockney=HOCKNEY
        )
        # per_round delta: T(n) / (n-1) constant for fixed m.
        per_round = sig.predict(n, 4096) / (n - 1)
        per_round_next = sig.predict(n + 1, 4096) / n
        assert per_round == pytest.approx(per_round_next, rel=1e-9)


class TestSampleValidation:
    def test_sample_validation(self):
        with pytest.raises(ValueError):
            AlltoallSample(1, 100, 1.0)
        with pytest.raises(ValueError):
            AlltoallSample(4, -1, 1.0)
        with pytest.raises(ValueError):
            AlltoallSample(4, 100, 0.0)

    def test_variance_of_mean(self):
        sample = AlltoallSample(4, 100, 1.0, std_time=0.2, reps=4)
        assert sample.variance_of_mean == pytest.approx(0.01)
        single = AlltoallSample(4, 100, 1.0, std_time=0.2, reps=1)
        assert single.variance_of_mean == pytest.approx(0.04)


class TestPredictMedEdgeCases:
    SIG = ContentionSignature(
        gamma=4.36, delta=4.9e-3, threshold=8192, hockney=HOCKNEY
    )

    def test_single_process_med_predicts_zero(self):
        from repro.core.med import MED

        med = MED(1)  # one process, nothing crosses the wire
        assert self.SIG.predict_med(med) == 0.0
        assert self.SIG.lower_bound_med(med) == 0.0

    def test_empty_exchange_predicts_zero(self):
        from repro.core.med import MED

        med = MED(5)  # five processes, no arcs
        assert self.SIG.predict_med(med) == 0.0
        assert self.SIG.lower_bound_med(med) == 0.0

    def test_zero_row_and_column_meds(self):
        from repro.core.med import MED

        # Process 0 sends nothing (zero row); process 2 receives nothing
        # (zero column).  Bounds follow the remaining bottleneck node.
        W = [[0, 0, 0], [100_000, 0, 0], [100_000, 0, 0]]
        med = MED.from_matrix(W)
        lb = self.SIG.lower_bound_med(med)
        # Receiver 0 takes 200 kB over two arcs: the in-side dominates.
        expected = 2 * HOCKNEY.alpha + 200_000 * HOCKNEY.beta
        assert lb == pytest.approx(expected)
        assert self.SIG.predict_med(med) >= lb * self.SIG.gamma

    def test_below_threshold_med_has_no_delta(self):
        from repro.core.med import MED

        small = MED.alltoall(6, self.SIG.threshold - 1)
        assert self.SIG.predict_med(small) == pytest.approx(
            self.SIG.lower_bound_med(small) * self.SIG.gamma
        )

    def test_threshold_counts_per_arc_not_per_total(self):
        from repro.core.med import MED

        # Two sub-threshold arcs into one node: total bytes exceed M but
        # no single message does, so delta must not be charged.
        half = self.SIG.threshold // 2 + 1
        med = MED(3)
        med.add_message(0, 2, half)
        med.add_message(1, 2, half)
        assert self.SIG.predict_med(med) == pytest.approx(
            self.SIG.lower_bound_med(med) * self.SIG.gamma
        )

    def test_global_delta_mode_charges_once(self):
        from repro.core.med import MED

        sig = ContentionSignature(
            gamma=2.0, delta=1e-3, threshold=1_024, hockney=HOCKNEY,
            delta_mode="global",
        )
        med = MED.alltoall(8, 4_096)
        assert sig.predict_med(med) == pytest.approx(
            sig.lower_bound_med(med) * 2.0 + 1e-3
        )

    def test_lower_bound_med_matches_prop1_on_uniform(self):
        from repro.core.med import MED

        med = MED.alltoall(7, 10_000)
        assert self.SIG.lower_bound_med(med) == pytest.approx(
            float(self.SIG.lower_bound(7, 10_000))
        )
