"""Unit tests for units, rng, resources, trace, stats, penalty, loss params."""

import numpy as np
import pytest

from repro.simnet.engine import Engine
from repro.simnet.entities import LinkKind
from repro.simnet.loss import LossParams
from repro.simnet.penalty import HolPenalty
from repro.simnet.resources import SerialResource
from repro.simnet.rng import RngFactory
from repro.simnet.stats import summarize
from repro.simnet.trace import NullTrace, Trace
from repro.units import (
    bandwidth_to_beta,
    beta_to_bandwidth,
    format_bandwidth,
    format_size,
    format_time,
    parse_size,
)


class TestUnits:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("32 MB", 32 * 1024 * 1024),
            ("8kB", 8 * 1024),
            ("1024 kb", 1024 * 1024),
            ("100", 100),
            (100, 100),
            (2.5, 2),
            ("1.5 KiB", 1536),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_size_invalid(self):
        with pytest.raises(ValueError):
            parse_size("banana")
        with pytest.raises(ValueError):
            parse_size(-5)

    def test_format_time_units(self):
        assert format_time(1.5) == "1.500 s"
        assert format_time(2e-3) == "2.000 ms"
        assert format_time(3e-6) == "3.000 us"
        assert format_time(5e-9) == "5.0 ns"

    def test_format_size(self):
        assert format_size(512) == "512 B"
        assert "KiB" in format_size(2048)
        assert "MiB" in format_size(5 * 1024 * 1024)

    def test_bandwidth_beta_roundtrip(self):
        assert beta_to_bandwidth(bandwidth_to_beta(1e8)) == pytest.approx(1e8)
        with pytest.raises(ValueError):
            bandwidth_to_beta(0)
        with pytest.raises(ValueError):
            beta_to_bandwidth(-1)

    def test_format_bandwidth(self):
        assert format_bandwidth(117.6e6) == "117.60 MB/s"


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngFactory(1).stream("x")
        b = RngFactory(1).stream("x")
        assert a.random() == b.random()

    def test_different_names_different_streams(self):
        f = RngFactory(1)
        assert f.stream("x").random() != f.stream("y").random()

    def test_child_factories_independent(self):
        f = RngFactory(1)
        assert f.child("a").seed != f.child("b").seed
        assert f.child("a").seed == RngFactory(1).child("a").seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")


class TestSerialResource:
    def test_fifo_service(self):
        engine = Engine()
        cpu = SerialResource(engine)
        done = []
        cpu.request(0.5, lambda: done.append(engine.now))
        cpu.request(0.25, lambda: done.append(engine.now))
        engine.run()
        assert done == [0.5, 0.75]

    def test_zero_duration_keeps_order(self):
        engine = Engine()
        cpu = SerialResource(engine)
        order = []
        cpu.request(0.0, lambda: order.append("a"))
        cpu.request(0.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b"]

    def test_negative_duration_rejected(self):
        engine = Engine()
        cpu = SerialResource(engine)
        with pytest.raises(ValueError):
            cpu.request(-1.0, lambda: None)

    def test_busy_accounting(self):
        engine = Engine()
        cpu = SerialResource(engine)
        cpu.request(1.0, lambda: None)
        cpu.request(2.0, lambda: None)
        engine.run()
        assert cpu.total_busy_time == pytest.approx(3.0)
        assert cpu.served == 2
        assert not cpu.busy


class TestTrace:
    def test_emit_and_query(self):
        trace = Trace()
        trace.emit(1.0, "a", x=1)
        trace.emit(2.0, "b", y=2)
        trace.emit(3.0, "a", x=3)
        assert len(trace) == 3
        assert [r["x"] for r in trace.by_category("a")] == [1, 3]
        assert trace.categories() == {"a", "b"}

    def test_null_trace_drops(self):
        trace = NullTrace()
        trace.emit(1.0, "a", x=1)
        assert len(trace) == 0


class TestStats:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_value_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestHolPenalty:
    def test_effective_capacity_formula(self):
        p = HolPenalty(eta={LinkKind.HOST_RX: 0.5})
        kinds = [LinkKind.HOST_RX, LinkKind.HOST_TX]
        eta = p.eta_vector(kinds)
        caps = np.array([100.0, 100.0])
        eff = p.effective(caps, eta, np.array([3, 3]))
        assert eff[0] == pytest.approx(100.0 / 2.0)  # 1 + 0.5*2
        assert eff[1] == pytest.approx(100.0)

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            HolPenalty(eta={LinkKind.HOST_RX: -0.1})

    def test_enabled_flag(self):
        assert not HolPenalty().enabled
        assert HolPenalty(eta={LinkKind.TRUNK: 0.1}).enabled


class TestLossParams:
    def test_rto_backoff_doubles_with_cap(self):
        p = LossParams(coeff_per_byte=1.0, rto_min=0.2, rto_max=1.0)
        assert p.rto(0) == pytest.approx(0.2)
        assert p.rto(1) == pytest.approx(0.4)
        assert p.rto(5) == pytest.approx(1.0)  # capped

    def test_sat_flows_default_generous(self):
        p = LossParams(coeff_per_byte=1.0)
        assert p.sat_flows_for(LinkKind.TRUNK) >= 10**6

    def test_validation(self):
        with pytest.raises(ValueError):
            LossParams(coeff_per_byte=-1.0)
        with pytest.raises(ValueError):
            LossParams(coeff_per_byte=1.0, rto_min=0.0)
        with pytest.raises(ValueError):
            LossParams(coeff_per_byte=1.0, chain_probability=1.5)

    def test_enabled(self):
        assert not LossParams().enabled
        assert LossParams(coeff_per_byte=1e-9).enabled
