"""The engine layer: registry, lowering, vector-vs-fluid equivalence,
cache-key stability, env/CLI plumbing and the stats columns."""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.cli import main
from repro.clusters.profiles import get_cluster
from repro.engines import DEFAULT_ENGINE, ENGINE_ENV, default_engine
from repro.exceptions import (
    LoweringError,
    MeasurementError,
    ScenarioError,
    UnknownNameError,
)
from repro.measure.alltoall import measure_alltoall
from repro.registry import ENGINES
from repro.scenario import ScenarioSpec
from repro.simmpi.lowering import lower_program
from repro.sweeps.cache import point_key, profile_fingerprint
from repro.sweeps.spec import SweepPoint, SweepSpec
from repro.traffic import as_pattern

REL_TOL = 1e-6

#: The three paper fabrics.  The bit-exact equivalence suite disables
#: the TCP loss overlay (lossy runs sample the same stochastic process
#: through different RNG streams, so they only match statistically —
#: see TestLossyVector).
PAPER_CLUSTERS = ("fast-ethernet", "gigabit-ethernet", "myrinet")

#: Scalar (regular All-to-All) algorithms — every registered name that
#: is not a matrix variant.
SCALAR_ALGORITHMS = tuple(
    name for name in api.list_algorithms() if not name.startswith("alltoallv-")
)


def _lossless(name: str):
    return get_cluster(name).with_overrides(loss=None)


def _mean(cluster, engine, **kwargs):
    kwargs.setdefault("reps", 1)
    kwargs.setdefault("seed", 0)
    sample = measure_alltoall(cluster, kwargs.pop("n", 6), kwargs.pop("m", 4096), engine=engine, **kwargs)
    return sample.mean_time


class TestRegistry:
    def test_builtins_registered(self):
        assert "fluid" in ENGINES and "vector" in ENGINES
        assert api.list_engines() == ["fluid", "vector"]

    def test_aliases_resolve(self):
        assert ENGINES.canonical("reference") == "fluid"
        assert ENGINES.canonical("batched") == "vector"

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownNameError):
            ENGINES.get("verlet")


class TestEquivalence:
    """The tentpole acceptance bar: vector matches fluid within 1e-6
    relative on every lossless algorithm x cluster combination."""

    @pytest.mark.parametrize("cluster_name", PAPER_CLUSTERS)
    @pytest.mark.parametrize("algorithm", SCALAR_ALGORITHMS)
    def test_scalar_algorithms(self, cluster_name, algorithm):
        cluster = _lossless(cluster_name)
        fluid = _mean(cluster, "fluid", algorithm=algorithm)
        vector = _mean(cluster, "vector", algorithm=algorithm)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    @pytest.mark.parametrize("cluster_name", PAPER_CLUSTERS)
    def test_rendezvous_sizes(self, cluster_name):
        # 70 kB crosses every profile's rendezvous threshold, so the
        # two-phase protocol replay (RTS edge) is exercised too.
        cluster = _lossless(cluster_name)
        fluid = _mean(cluster, "fluid", m=70_000)
        vector = _mean(cluster, "vector", m=70_000)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    @pytest.mark.parametrize("pattern", ("zipf", "hotspot", "shift"))
    @pytest.mark.parametrize("algorithm", ("direct", "rounds"))
    def test_irregular_patterns(self, pattern, algorithm):
        cluster = _lossless("gigabit-ethernet")
        spec = as_pattern(pattern)
        fluid = _mean(cluster, "fluid", algorithm=algorithm, pattern=spec)
        vector = _mean(cluster, "vector", algorithm=algorithm, pattern=spec)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    def test_seed_sensitivity_matches(self):
        # Skew/jitter RNG streams must replay identically per seed.
        cluster = _lossless("gigabit-ethernet")
        for seed in (0, 3):
            fluid = _mean(cluster, "fluid", seed=seed)
            vector = _mean(cluster, "vector", seed=seed)
            assert vector == pytest.approx(fluid, rel=REL_TOL)


class TestVectorLimits:
    def test_lowering_rejects_clock_reads(self):
        def clocky(ctx, msg_size):
            _ = ctx.now
            yield from ()

        with pytest.raises(LoweringError, match="ctx.now"):
            lower_program(clocky, 4, 2_048)


class TestLossyVector:
    """The lossy overlay: acceptance, statistical equivalence with the
    fluid oracle, surfaced counters, stall/resume traces, determinism,
    and the warm-start solve cache."""

    #: Paired-seed configurations with measurable loss activity: the
    #: gige backplane saturates past n~11 (overload 9 at n=16) and the
    #: fast-ethernet fabric loses occasionally at the same scale.
    GIGE = ("gigabit-ethernet", 16, 1_000_000)
    FE = ("fast-ethernet", 16, 1_000_000)
    SEEDS = range(20)

    def test_lossy_profile_accepted(self):
        cluster = get_cluster("gigabit-ethernet")
        assert cluster.loss is not None and cluster.loss.enabled
        sample = measure_alltoall(cluster, 8, 4_096, reps=1, engine="vector")
        assert sample.mean_time > 0

    @pytest.mark.parametrize("config", (GIGE, FE), ids=("gige", "fe"))
    def test_statistical_equivalence(self, config):
        # Same stochastic process, different RNG streams: individual
        # runs differ, paired-seed means must agree within 10%.
        cluster_name, n, m = config
        cluster = get_cluster(cluster_name)
        fluid = [
            measure_alltoall(
                cluster, n, m, reps=1, seed=s, engine="fluid"
            ).mean_time
            for s in self.SEEDS
        ]
        vector = [
            measure_alltoall(
                cluster, n, m, reps=1, seed=s, engine="vector"
            ).mean_time
            for s in self.SEEDS
        ]
        fluid_mean = sum(fluid) / len(fluid)
        vector_mean = sum(vector) / len(vector)
        assert vector_mean == pytest.approx(fluid_mean, rel=0.10)

    def test_loss_counters_surfaced(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        cluster_name, n, m = self.GIGE
        cluster = get_cluster(cluster_name)
        sample = measure_alltoall(
            cluster, n, m, reps=2, seed=0, engine="vector"
        )
        stats = sample.sim_stats
        assert stats.engine == "vector"
        assert stats.losses > 0
        assert 0 < stats.stalls <= stats.losses

    def test_result_total_losses_matches_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        cluster_name, n, m = self.GIGE
        for engine in ("fluid", "vector"):
            sample = measure_alltoall(
                get_cluster(cluster_name), n, m, reps=1, seed=0,
                engine=engine,
            )
            assert sample.sim_stats.losses > 0

    def test_stall_resume_trace(self):
        cluster_name, n, m = self.GIGE
        sample = measure_alltoall(
            get_cluster(cluster_name), n, m, reps=1, seed=0,
            engine="vector", observe=True,
        )
        trace = sample.observed.trace
        stalls = trace.by_category("flow.stall")
        resumes = trace.by_category("flow.resume")
        assert stalls and len(stalls) == len(resumes)
        by_fid = {r["fid"]: r for r in resumes}
        for stall in stalls:
            resume = by_fid[stall["fid"]]
            # The RTO gap: resume fires exactly penalty after the stall.
            assert resume.time == pytest.approx(
                stall.time + stall["penalty"]
            )
            assert stall["penalty"] >= 0.2  # rto_min
        # Completed flows report their loss counts (not hardcoded 0).
        completes = trace.by_category("flow.complete")
        assert sum(r["losses"] for r in completes) >= len(stalls)
        # The chrome exporter renders the new categories as instants.
        from repro.obs.export import to_chrome

        out = to_chrome(trace)
        assert "flow.stall" in out and "flow.resume" in out

    def test_cross_process_loss_determinism(self):
        # Named per-flow RNG streams make the loss sequence a pure
        # function of the seed: two fresh interpreters must produce an
        # identical stall-event timeline, bit for bit.
        import json
        import os
        import subprocess
        import sys

        script = (
            "import json\n"
            "from repro.clusters.profiles import get_cluster\n"
            "from repro.measure.alltoall import measure_alltoall\n"
            "s = measure_alltoall(get_cluster('gigabit-ethernet'), 16,\n"
            "                     1_000_000, reps=1, seed=3,\n"
            "                     engine='vector', observe=True)\n"
            "trace = s.observed.trace\n"
            "events = [(float(r.time).hex(), r['fid'], r['backoff'],\n"
            "           float(r['penalty']).hex())\n"
            "          for r in trace.by_category('flow.stall')]\n"
            "print(json.dumps({'events': events,\n"
            "                  'duration': float(s.mean_time).hex()}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["PYTHONHASHSEED"] = "0"
        outputs = []
        for run in range(2):
            env["PYTHONHASHSEED"] = str(run)  # hash order must not matter
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env=env, cwd=os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))
                ),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert outputs[0]["events"], "expected loss events at this config"

    def test_solve_reuse_when_set_unchanged(self):
        # White-box: a resolve that sees the exact same active set skips
        # the max-min solve and reuses the cached rates/CSR.
        import numpy as np

        from repro.simmpi.lowering import lower_program
        from repro.simnet.vector import VectorSimulator

        cluster = _lossless("gigabit-ethernet")
        from repro.registry import ALGORITHMS

        program = ALGORITHMS.get("direct")
        lowered = lower_program(program, 8, 4_096)
        sim = VectorSimulator(
            cluster.topology(8), cluster.transport, nprocs=8,
            loss_params=cluster.loss, seed=0,
        )
        sim.run(lowered)
        remote = [
            mid for mid in range(len(sim._msg_wire)) if not sim._msg_local[mid]
        ][:4]
        sim._act_mids = np.asarray(remote, dtype=np.int64)
        sim._act_remaining = np.full(len(remote), 1e8)
        sim._last_advance = sim.engine.now
        sim._structure_dirty = False
        sim._solve_mids = None
        solves_before = sim.solves
        sim._resolve()
        assert sim.solves == solves_before + 1
        rates = sim._act_rates
        reuses_before = sim.solve_reuses
        sim._resolve()  # dt == 0, same set: must not re-solve
        assert sim.solves == solves_before + 1
        assert sim.solve_reuses == reuses_before + 1
        assert sim._act_rates is rates

    def test_lossless_runs_allocate_no_loss_state(self):
        from repro.simmpi.lowering import lower_program
        from repro.simnet.vector import VectorSimulator
        from repro.registry import ALGORITHMS

        cluster = _lossless("gigabit-ethernet")
        lowered = lower_program(ALGORITHMS.get("direct"), 6, 2_048)
        sim = VectorSimulator(
            cluster.topology(6), cluster.transport, nprocs=6,
            loss_params=cluster.loss, seed=0,
        )
        result = sim.run(lowered)
        assert result.total_losses == 0
        assert sim._loss_model is None
        assert len(sim._loss_budget) == 0


class TestCacheKeyStability:
    """Default-engine cache keys must stay byte-identical to the
    pre-engine-layer (PR 5) filenames, or every user's result cache is
    silently invalidated."""

    EXPECTED = {
        "gigabit-ethernet":
            "85b64bc1fb89a639f7835b46e012923c2e3e06f008fb844be02128ec9827ac94",
        "fast-ethernet":
            "fc9c0702ef7825163475c409cd7c8f5e17e5a7cac67f4291298ebfeb6af82636",
        "myrinet":
            "0c55e19095873e30ddad88e9cb0e6a3e9659d21af0112b6403c4fa5196642b0a",
    }
    EXPECTED_PATTERN = (
        "a389d34fe2ab19c9f98053ce46ad84ba1e5155bc8af63ea02a6f7d8ef2993b71"
    )
    EXPECTED_SCENARIO = (
        "55ca616a477f1531164d90b03258eb676bea1baa6eacb55c6205c19d3a4b5661"
    )

    @pytest.mark.parametrize("cluster_name", sorted(EXPECTED))
    def test_registry_cluster_keys_unchanged(self, cluster_name):
        point = SweepPoint(
            cluster=cluster_name, n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        key = point_key(point, profile_fingerprint(get_cluster(cluster_name)))
        assert key == self.EXPECTED[cluster_name]

    def test_pattern_point_key_unchanged(self):
        point = SweepPoint(
            cluster="gigabit-ethernet", n_processes=8, msg_size=4096,
            algorithm="bruck", seed=1, reps=2, pattern=as_pattern("zipf"),
        )
        key = point_key(
            point, profile_fingerprint(get_cluster("gigabit-ethernet"))
        )
        assert key == self.EXPECTED_PATTERN

    def test_scenario_point_key_unchanged(self):
        spec = ScenarioSpec(
            name="demo", base="gigabit-ethernet",
            transport={"jitter_scale": 0.0},
        )
        point = SweepPoint(
            cluster="demo", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        key = point_key(
            point, profile_fingerprint(spec.build_profile()),
            scenario=spec.cache_payload(),
        )
        assert key == self.EXPECTED_SCENARIO

    def test_non_default_engine_changes_key(self):
        base = SweepPoint(
            cluster="myrinet", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        vec = dataclasses.replace(base, engine="vector")
        fingerprint = profile_fingerprint(get_cluster("myrinet"))
        assert "engine" not in base.key_payload()
        assert vec.key_payload()["engine"] == "vector"
        assert point_key(base, fingerprint) != point_key(vec, fingerprint)


class TestEngineThreading:
    def test_point_resolves_default_engine_eagerly(self):
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1,
        )
        assert point.engine == DEFAULT_ENGINE

    def test_point_canonicalises_alias(self):
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1, engine="batched",
        )
        assert point.engine == "vector"

    def test_sweep_spec_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepSpec(
                clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
                engine="verlet",
            )

    def test_sweep_spec_threads_engine_to_points(self):
        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
            engine="vector",
        )
        assert all(p.engine == "vector" for p in spec.points())

    def test_scenario_spec_collapses_default_engine(self):
        spec = ScenarioSpec(name="d", base="myrinet", engine="fluid")
        assert spec.engine is None
        assert "engine" not in spec.to_dict()
        assert "engine" not in spec.cache_payload()

    def test_scenario_spec_round_trips_engine(self):
        spec = ScenarioSpec(name="d", base="myrinet", engine="vector")
        assert spec.engine == "vector"
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_payload()["engine"] == "vector"

    def test_scenario_spec_rejects_unknown_engine(self):
        with pytest.raises(ScenarioError, match="unknown engine"):
            ScenarioSpec(name="d", base="myrinet", engine="verlet")

    def test_measure_rejects_unknown_engine(self):
        with pytest.raises(MeasurementError, match="unknown"):
            measure_alltoall(
                get_cluster("myrinet"), 4, 2048, reps=1, engine="verlet"
            )


class TestEnvDefault:
    def test_default_is_fluid(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert default_engine() == "fluid"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "batched")
        assert default_engine() == "vector"
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1,
        )
        assert point.engine == "vector"
        assert point.key_payload()["engine"] == "vector"

    def test_malformed_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "verlet")
        with pytest.raises(UnknownNameError, match=ENGINE_ENV):
            default_engine()


class TestStatsColumns:
    def test_rows_plain_by_default(self, monkeypatch):
        from repro.exec.sinks import ROW_FIELDS, row_fields

        monkeypatch.delenv("REPRO_SIM_STATS", raising=False)
        assert row_fields() == ROW_FIELDS

    def test_stats_columns_when_enabled(self, monkeypatch):
        from repro.exec.sinks import ROW_FIELDS, STATS_ROW_FIELDS, row_fields
        from repro.sweeps.runner import SweepRunner

        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        assert row_fields() == ROW_FIELDS + STATS_ROW_FIELDS
        runner = SweepRunner(workers=1, cache=None, executor="serial")
        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
            reps=1, engine="vector",
        )
        result = runner.run(spec)
        fields, rows = result.to_rows()
        assert fields == ROW_FIELDS + STATS_ROW_FIELDS
        row = rows[0]
        assert row["engine"] == "vector"
        assert row["sim_resolves"] > 0
        assert row["sim_epochs"] > 0
        assert row["sim_events"] > 0
        # Myrinet is lossless: counters present, zero.
        assert row["sim_losses"] == 0
        assert row["sim_stalls"] == 0

    def test_sample_carries_merged_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        sample = measure_alltoall(
            get_cluster("myrinet"), 4, 2048, reps=2, engine="fluid"
        )
        stats = getattr(sample, "sim_stats", None)
        assert stats is not None and stats.engine == "fluid"
        assert stats.resolves > 0


class TestCli:
    def test_list_engines(self, capsys):
        assert main(["list", "engines"]) == 0
        out = capsys.readouterr().out
        assert "fluid" in out and "vector" in out

    def test_sweep_unknown_engine_clean_exit(self, capsys):
        code = main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "verlet",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown engine 'verlet'" in err

    def test_characterize_unknown_engine_clean_exit(self, capsys):
        assert main(["characterize", "myrinet", "--engine", "verlet"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_sweep_vector_engine_runs(self, capsys):
        code = main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "vector",
        ])
        assert code == 0
        assert "simulated : 1" in capsys.readouterr().out

    def test_sweep_vector_on_lossy_cluster_runs(self, capsys):
        # Loss-enabled profiles run on the vector engine since the loss
        # overlay was vectorized (they used to be rejected).
        code = main([
            "sweep", "--clusters", "gigabit-ethernet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "vector",
        ])
        assert code == 0
        assert "simulated : 1" in capsys.readouterr().out
