"""The engine layer: registry, lowering, vector-vs-fluid equivalence,
cache-key stability, env/CLI plumbing and the stats columns."""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.cli import main
from repro.clusters.profiles import get_cluster
from repro.engines import DEFAULT_ENGINE, ENGINE_ENV, default_engine
from repro.exceptions import (
    LoweringError,
    MeasurementError,
    ScenarioError,
    SimulationError,
    UnknownNameError,
)
from repro.measure.alltoall import measure_alltoall
from repro.registry import ENGINES
from repro.scenario import ScenarioSpec
from repro.simmpi.lowering import lower_program
from repro.sweeps.cache import point_key, profile_fingerprint
from repro.sweeps.spec import SweepPoint, SweepSpec
from repro.traffic import as_pattern

REL_TOL = 1e-6

#: The three paper fabrics, with the TCP loss overlay disabled so the
#: vector engine (which does not model it) can run the same workload.
PAPER_CLUSTERS = ("fast-ethernet", "gigabit-ethernet", "myrinet")

#: Scalar (regular All-to-All) algorithms — every registered name that
#: is not a matrix variant.
SCALAR_ALGORITHMS = tuple(
    name for name in api.list_algorithms() if not name.startswith("alltoallv-")
)


def _lossless(name: str):
    return get_cluster(name).with_overrides(loss=None)


def _mean(cluster, engine, **kwargs):
    kwargs.setdefault("reps", 1)
    kwargs.setdefault("seed", 0)
    sample = measure_alltoall(cluster, kwargs.pop("n", 6), kwargs.pop("m", 4096), engine=engine, **kwargs)
    return sample.mean_time


class TestRegistry:
    def test_builtins_registered(self):
        assert "fluid" in ENGINES and "vector" in ENGINES
        assert api.list_engines() == ["fluid", "vector"]

    def test_aliases_resolve(self):
        assert ENGINES.canonical("reference") == "fluid"
        assert ENGINES.canonical("batched") == "vector"

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownNameError):
            ENGINES.get("verlet")


class TestEquivalence:
    """The tentpole acceptance bar: vector matches fluid within 1e-6
    relative on every lossless algorithm x cluster combination."""

    @pytest.mark.parametrize("cluster_name", PAPER_CLUSTERS)
    @pytest.mark.parametrize("algorithm", SCALAR_ALGORITHMS)
    def test_scalar_algorithms(self, cluster_name, algorithm):
        cluster = _lossless(cluster_name)
        fluid = _mean(cluster, "fluid", algorithm=algorithm)
        vector = _mean(cluster, "vector", algorithm=algorithm)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    @pytest.mark.parametrize("cluster_name", PAPER_CLUSTERS)
    def test_rendezvous_sizes(self, cluster_name):
        # 70 kB crosses every profile's rendezvous threshold, so the
        # two-phase protocol replay (RTS edge) is exercised too.
        cluster = _lossless(cluster_name)
        fluid = _mean(cluster, "fluid", m=70_000)
        vector = _mean(cluster, "vector", m=70_000)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    @pytest.mark.parametrize("pattern", ("zipf", "hotspot", "shift"))
    @pytest.mark.parametrize("algorithm", ("direct", "rounds"))
    def test_irregular_patterns(self, pattern, algorithm):
        cluster = _lossless("gigabit-ethernet")
        spec = as_pattern(pattern)
        fluid = _mean(cluster, "fluid", algorithm=algorithm, pattern=spec)
        vector = _mean(cluster, "vector", algorithm=algorithm, pattern=spec)
        assert vector == pytest.approx(fluid, rel=REL_TOL)

    def test_seed_sensitivity_matches(self):
        # Skew/jitter RNG streams must replay identically per seed.
        cluster = _lossless("gigabit-ethernet")
        for seed in (0, 3):
            fluid = _mean(cluster, "fluid", seed=seed)
            vector = _mean(cluster, "vector", seed=seed)
            assert vector == pytest.approx(fluid, rel=REL_TOL)


class TestVectorLimits:
    def test_rejects_loss_enabled_profile(self):
        cluster = get_cluster("gigabit-ethernet")
        assert cluster.loss is not None
        with pytest.raises(SimulationError, match="loss overlay"):
            measure_alltoall(cluster, 4, 2_048, reps=1, engine="vector")

    def test_lowering_rejects_clock_reads(self):
        def clocky(ctx, msg_size):
            _ = ctx.now
            yield from ()

        with pytest.raises(LoweringError, match="ctx.now"):
            lower_program(clocky, 4, 2_048)


class TestCacheKeyStability:
    """Default-engine cache keys must stay byte-identical to the
    pre-engine-layer (PR 5) filenames, or every user's result cache is
    silently invalidated."""

    EXPECTED = {
        "gigabit-ethernet":
            "85b64bc1fb89a639f7835b46e012923c2e3e06f008fb844be02128ec9827ac94",
        "fast-ethernet":
            "fc9c0702ef7825163475c409cd7c8f5e17e5a7cac67f4291298ebfeb6af82636",
        "myrinet":
            "0c55e19095873e30ddad88e9cb0e6a3e9659d21af0112b6403c4fa5196642b0a",
    }
    EXPECTED_PATTERN = (
        "a389d34fe2ab19c9f98053ce46ad84ba1e5155bc8af63ea02a6f7d8ef2993b71"
    )
    EXPECTED_SCENARIO = (
        "55ca616a477f1531164d90b03258eb676bea1baa6eacb55c6205c19d3a4b5661"
    )

    @pytest.mark.parametrize("cluster_name", sorted(EXPECTED))
    def test_registry_cluster_keys_unchanged(self, cluster_name):
        point = SweepPoint(
            cluster=cluster_name, n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        key = point_key(point, profile_fingerprint(get_cluster(cluster_name)))
        assert key == self.EXPECTED[cluster_name]

    def test_pattern_point_key_unchanged(self):
        point = SweepPoint(
            cluster="gigabit-ethernet", n_processes=8, msg_size=4096,
            algorithm="bruck", seed=1, reps=2, pattern=as_pattern("zipf"),
        )
        key = point_key(
            point, profile_fingerprint(get_cluster("gigabit-ethernet"))
        )
        assert key == self.EXPECTED_PATTERN

    def test_scenario_point_key_unchanged(self):
        spec = ScenarioSpec(
            name="demo", base="gigabit-ethernet",
            transport={"jitter_scale": 0.0},
        )
        point = SweepPoint(
            cluster="demo", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        key = point_key(
            point, profile_fingerprint(spec.build_profile()),
            scenario=spec.cache_payload(),
        )
        assert key == self.EXPECTED_SCENARIO

    def test_non_default_engine_changes_key(self):
        base = SweepPoint(
            cluster="myrinet", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        vec = dataclasses.replace(base, engine="vector")
        fingerprint = profile_fingerprint(get_cluster("myrinet"))
        assert "engine" not in base.key_payload()
        assert vec.key_payload()["engine"] == "vector"
        assert point_key(base, fingerprint) != point_key(vec, fingerprint)


class TestEngineThreading:
    def test_point_resolves_default_engine_eagerly(self):
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1,
        )
        assert point.engine == DEFAULT_ENGINE

    def test_point_canonicalises_alias(self):
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1, engine="batched",
        )
        assert point.engine == "vector"

    def test_sweep_spec_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepSpec(
                clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
                engine="verlet",
            )

    def test_sweep_spec_threads_engine_to_points(self):
        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
            engine="vector",
        )
        assert all(p.engine == "vector" for p in spec.points())

    def test_scenario_spec_collapses_default_engine(self):
        spec = ScenarioSpec(name="d", base="myrinet", engine="fluid")
        assert spec.engine is None
        assert "engine" not in spec.to_dict()
        assert "engine" not in spec.cache_payload()

    def test_scenario_spec_round_trips_engine(self):
        spec = ScenarioSpec(name="d", base="myrinet", engine="vector")
        assert spec.engine == "vector"
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_payload()["engine"] == "vector"

    def test_scenario_spec_rejects_unknown_engine(self):
        with pytest.raises(ScenarioError, match="unknown engine"):
            ScenarioSpec(name="d", base="myrinet", engine="verlet")

    def test_measure_rejects_unknown_engine(self):
        with pytest.raises(MeasurementError, match="unknown"):
            measure_alltoall(
                get_cluster("myrinet"), 4, 2048, reps=1, engine="verlet"
            )


class TestEnvDefault:
    def test_default_is_fluid(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert default_engine() == "fluid"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "batched")
        assert default_engine() == "vector"
        point = SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=2048,
            algorithm="direct", seed=0, reps=1,
        )
        assert point.engine == "vector"
        assert point.key_payload()["engine"] == "vector"

    def test_malformed_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "verlet")
        with pytest.raises(UnknownNameError, match=ENGINE_ENV):
            default_engine()


class TestStatsColumns:
    def test_rows_plain_by_default(self, monkeypatch):
        from repro.exec.sinks import ROW_FIELDS, row_fields

        monkeypatch.delenv("REPRO_SIM_STATS", raising=False)
        assert row_fields() == ROW_FIELDS

    def test_stats_columns_when_enabled(self, monkeypatch):
        from repro.exec.sinks import ROW_FIELDS, STATS_ROW_FIELDS, row_fields
        from repro.sweeps.runner import SweepRunner

        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        assert row_fields() == ROW_FIELDS + STATS_ROW_FIELDS
        runner = SweepRunner(workers=1, cache=None, executor="serial")
        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2048,),
            reps=1, engine="vector",
        )
        result = runner.run(spec)
        fields, rows = result.to_rows()
        assert fields == ROW_FIELDS + STATS_ROW_FIELDS
        row = rows[0]
        assert row["engine"] == "vector"
        assert row["sim_resolves"] > 0
        assert row["sim_epochs"] > 0
        assert row["sim_events"] > 0

    def test_sample_carries_merged_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_STATS", "1")
        sample = measure_alltoall(
            get_cluster("myrinet"), 4, 2048, reps=2, engine="fluid"
        )
        stats = getattr(sample, "sim_stats", None)
        assert stats is not None and stats.engine == "fluid"
        assert stats.resolves > 0


class TestCli:
    def test_list_engines(self, capsys):
        assert main(["list", "engines"]) == 0
        out = capsys.readouterr().out
        assert "fluid" in out and "vector" in out

    def test_sweep_unknown_engine_clean_exit(self, capsys):
        code = main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "verlet",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown engine 'verlet'" in err

    def test_characterize_unknown_engine_clean_exit(self, capsys):
        assert main(["characterize", "myrinet", "--engine", "verlet"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_sweep_vector_engine_runs(self, capsys):
        code = main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "vector",
        ])
        assert code == 0
        assert "simulated : 1" in capsys.readouterr().out

    def test_sweep_vector_on_lossy_cluster_clean_error(self, capsys):
        code = main([
            "sweep", "--clusters", "gigabit-ethernet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache", "--engine", "vector",
        ])
        assert code == 1
        assert "loss overlay" in capsys.readouterr().err
