"""Smoke + structural tests for the per-figure experiment drivers."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, SCALES, run_experiment
from repro.experiments.common import ExperimentResult, resolve_scale


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {f"fig{i:02d}" for i in range(2, 15)} | {
            "tableS", "tableM", "tableP",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_scales_known(self):
        assert {"smoke", "bench", "default", "full"} <= set(SCALES)
        with pytest.raises(ValueError):
            resolve_scale("giant")


@pytest.mark.slow
class TestSmokeRuns:
    """Every experiment must run end-to-end at smoke scale."""

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_experiment_runs_and_renders(self, exp_id, tmp_path):
        result = run_experiment(exp_id, scale="smoke", seed=0)
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == exp_id
        rendered = result.render()
        assert result.paper_ref in rendered
        # Tabular round trip.
        fieldnames, rows = result.to_rows()
        assert fieldnames and rows
        result.save_csv(tmp_path / f"{exp_id}.csv")
        assert (tmp_path / f"{exp_id}.csv").exists()


class TestShapes:
    def test_fig02_smoke_series_monotone_x(self):
        result = run_experiment("fig02", scale="smoke", seed=0)
        ks, bw = result.series["Average bandwidth"]
        assert np.all(np.diff(ks) > 0)
        assert np.all(bw > 0)

    def test_fig06_prediction_between_bound_and_far_above(self):
        result = run_experiment("fig06", scale="smoke", seed=0)
        m, bound = result.series["Lower bound"]
        _, predicted = result.series["Prediction"]
        assert np.all(predicted >= bound * 0.9)

    def test_results_are_deterministic(self):
        a = run_experiment("fig02", scale="smoke", seed=3)
        b = run_experiment("fig02", scale="smoke", seed=3)
        np.testing.assert_array_equal(
            a.series["Average bandwidth"][1], b.series["Average bandwidth"][1]
        )
