"""Unit tests for cluster profiles."""

import pytest

from repro.clusters.profiles import (
    fast_ethernet,
    get_cluster,
    gigabit_ethernet,
    myrinet,
)
from repro.registry import CLUSTERS


class TestRegistry:
    def test_all_profiles_constructible(self):
        for name in CLUSTERS.names():
            profile = get_cluster(name)
            assert profile.name == name
            assert profile.description

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            get_cluster("infiniband")

    def test_near_miss_names_resolve(self):
        # Satellite bugfix: underscore/case variants must not be rejected.
        assert get_cluster("fast_ethernet").name == "fast-ethernet"
        assert get_cluster("Fast-Ethernet").name == "fast-ethernet"
        assert get_cluster("MYRINET").name == "myrinet"

    def test_aliases_resolve(self):
        assert get_cluster("fe").name == "fast-ethernet"
        assert get_cluster("gige").name == "gigabit-ethernet"


class TestProfiles:
    def test_fe_topology_spreads_over_edges(self):
        topo = fast_ethernet().topology(24)
        switches = {host.switch for host in topo.hosts}
        assert len(switches) == 2  # 20 per edge -> 2 edges for 24 hosts

    def test_gige_single_switch_with_backplane(self):
        topo = gigabit_ethernet().topology(8)
        assert len(topo.switches) == 1
        assert topo.switches[0].has_backplane

    def test_myrinet_is_lossless_serial(self):
        profile = myrinet()
        assert profile.loss is None
        assert profile.transport.sender_concurrency == 1
        assert profile.transport.mux_overhead == 0.0

    def test_ethernet_profiles_are_tcp_like(self):
        for factory in (fast_ethernet, gigabit_ethernet):
            profile = factory()
            assert profile.loss is not None and profile.loss.enabled
            assert profile.transport.sender_concurrency is None
            assert profile.transport.mux_overhead > 0

    def test_paper_signatures_recorded(self):
        assert fast_ethernet().paper.gamma == pytest.approx(1.0195)
        assert gigabit_ethernet().paper.gamma == pytest.approx(4.3628)
        assert myrinet().paper.gamma == pytest.approx(2.49754)

    def test_max_hosts_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            myrinet().topology(500)

    def test_runtime_builder(self):
        runtime = gigabit_ethernet().runtime(4, seed=1)
        assert runtime.nprocs == 4

    def test_with_overrides(self):
        derived = myrinet().with_overrides(start_skew_scale=0.0)
        assert derived.start_skew_scale == 0.0
        assert myrinet().start_skew_scale > 0  # original untouched

    def test_nic_bandwidth_ordering(self):
        # Myrinet > GigE > FE, as in the paper's hardware.
        def nic(profile):
            topo = profile.topology(2)
            return topo.links[topo.hosts[0].tx_link].capacity

        assert nic(myrinet()) > nic(gigabit_ethernet()) > nic(fast_ethernet())
