"""Observability layer 1: per-link timelines and MED contention reports.

The acceptance property of the obs subsystem is the paper's §5 claim
made executable: on a uniform All-to-All direct exchange, the observed
peak concurrency on every link equals the MED-predicted degree — tested
here on two paper clusters (fluid engine) and under a non-identity
placement on the vector engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters.profiles import get_cluster
from repro.measure.alltoall import measure_alltoall
from repro.obs import (
    ContentionReport,
    LinkTimeline,
    Observation,
    predicted_concurrency,
)
from repro.simnet.entities import LinkKind
from repro.simnet.fairness import FlowPaths
from repro.simnet.topology import single_switch


def _switch(n: int) -> "Topology":
    return single_switch(n, nic_bandwidth=1e8, backplane_capacity=4e8)


def _uniform(n: int, m: int = 1024) -> np.ndarray:
    matrix = np.full((n, n), m)
    np.fill_diagonal(matrix, 0)
    return matrix


class TestLinkTimeline:
    def test_rejects_empty_topologies(self):
        with pytest.raises(ValueError):
            LinkTimeline(0)

    def test_piecewise_constant_integration(self):
        tl = LinkTimeline(3)
        # One flow over links (0, 1) at 100 B/s for 2 s, then idle.
        paths = FlowPaths.from_lists([(0, 1)])
        tl.record_active(0.0, paths, np.array([100.0]))
        tl.record_active(2.0, None, np.empty(0))
        assert tl.duration == 2.0
        np.testing.assert_allclose(tl.delivered_bytes, [200.0, 200.0, 0.0])
        np.testing.assert_allclose(tl.busy_time, [2.0, 2.0, 0.0])
        assert tl.peak_concurrency.tolist() == [1, 1, 0]

    def test_peak_tracks_the_max_not_the_last_state(self):
        tl = LinkTimeline(2)
        two = FlowPaths.from_lists([(0,), (0,)])
        one = FlowPaths.from_lists([(0,)])
        tl.record_active(0.0, two, np.array([1.0, 1.0]))
        tl.record_active(1.0, one, np.array([1.0]))
        tl.record_active(2.0, None, np.empty(0))
        assert tl.peak_concurrency[0] == 2
        # 2 B/s for 1 s, then 1 B/s for 1 s.
        assert tl.delivered_bytes[0] == pytest.approx(3.0)

    def test_utilization_requires_capacities(self):
        tl = LinkTimeline(1)
        with pytest.raises(ValueError, match="capacities"):
            tl.utilization()
        tl = LinkTimeline(1, capacities=np.array([100.0]))
        tl.record_active(0.0, FlowPaths.from_lists([(0,)]), np.array([50.0]))
        tl.record_active(1.0, None, np.empty(0))
        np.testing.assert_allclose(tl.utilization(), [0.5])

    def test_series_shapes_and_opt_out(self):
        tl = LinkTimeline(2)
        tl.record_active(0.0, FlowPaths.from_lists([(1,)]), np.array([1.0]))
        tl.record_active(1.0, None, np.empty(0))
        times, conc, bw = tl.series()
        assert times.shape == (2,)
        assert conc.shape == bw.shape == (2, 2)
        assert conc[0, 1] == 1
        lean = LinkTimeline(2, keep_series=False)
        lean.record_active(0.0, None, np.empty(0))
        with pytest.raises(ValueError, match="keep_series"):
            lean.series()

    def test_empty_series_is_well_shaped(self):
        times, conc, bw = LinkTimeline(3).series()
        assert times.shape == (0,)
        assert conc.shape == bw.shape == (0, 3)

    def test_for_topology_carries_link_metadata(self):
        topo = _switch(3)
        tl = LinkTimeline.for_topology(topo)
        assert tl.n_links == topo.n_links
        assert tl.names is not None and "host0.tx" in tl.names
        assert tl.kinds is not None and "backplane" in tl.kinds
        np.testing.assert_allclose(tl.capacities, topo.capacities())
        assert tl.link_name(0) == tl.names[0]
        assert LinkTimeline(2).link_name(1) == "link1"


class TestPredictedConcurrency:
    def test_uniform_alltoall_predicts_the_degree_on_nics(self):
        n = 5
        topo = _switch(n)
        predicted = predicted_concurrency(topo, _uniform(n))
        for link in topo.links:
            if link.kind in (LinkKind.HOST_TX, LinkKind.HOST_RX):
                assert predicted[link.index] == n - 1
            elif link.kind is LinkKind.BACKPLANE:
                assert predicted[link.index] == n * (n - 1)

    def test_zero_matrix_predicts_silence(self):
        topo = _switch(3)
        assert predicted_concurrency(topo, np.zeros((3, 3))).sum() == 0

    def test_rejects_non_square_matrices(self):
        with pytest.raises(ValueError, match="square"):
            predicted_concurrency(_switch(3), np.zeros((3, 2)))


class TestMedEquality:
    """Observed peak concurrency == MED degree, per acceptance criteria."""

    def _observe(self, cluster, n, m, **kwargs):
        sample = measure_alltoall(
            cluster, n, m, reps=1, seed=0, observe=True, **kwargs
        )
        obs = sample.observed
        assert isinstance(obs, Observation)
        return obs

    def test_gigabit_ethernet_matches_med_on_every_link(self):
        obs = self._observe(get_cluster("gigabit-ethernet"), 8, 32768)
        assert obs.report.matches_prediction
        assert obs.report.mismatches() == []
        nics = [
            link for link in obs.report
            if link.kind in ("host_tx", "host_rx")
        ]
        assert nics and all(link.observed_peak == 7 for link in nics)

    def test_fast_ethernet_matches_med_on_every_link(self):
        obs = self._observe(get_cluster("fast-ethernet"), 6, 16384)
        assert obs.report.matches_prediction
        nics = [
            link for link in obs.report
            if link.kind in ("host_tx", "host_rx")
        ]
        assert nics and all(link.observed_peak == 5 for link in nics)

    def test_vector_engine_under_non_identity_placement(self):
        cluster = get_cluster("fast-ethernet").with_overrides(loss=None)
        n = 24
        obs = self._observe(
            cluster, n, 8192,
            engine="vector", placement=list(reversed(range(n))),
        )
        assert obs.engine == "vector"
        assert obs.report.matches_prediction
        assert obs.report.mismatches() == []


class TestEngineEquivalence:
    """Fluid and vector engines deliver identical per-link byte totals."""

    def test_delivered_bytes_agree_per_link(self):
        cluster = get_cluster("gigabit-ethernet").with_overrides(loss=None)
        observations = {
            engine: measure_alltoall(
                cluster, 8, 65536, reps=1, seed=0,
                engine=engine, observe=True,
            ).observed
            for engine in ("fluid", "vector")
        }
        fluid = observations["fluid"].timeline.delivered_bytes
        vector = observations["vector"].timeline.delivered_bytes
        assert fluid.sum() > 0
        np.testing.assert_allclose(vector, fluid, rtol=1e-9)


class TestContentionReport:
    def _report(self):
        sample = measure_alltoall(
            get_cluster("myrinet"), 4, 8192, reps=1, observe=True
        )
        return sample.observed.report

    def test_iterates_in_link_order_and_sizes(self):
        report = self._report()
        assert len(report) == len(list(report))
        assert [link.index for link in report] == list(range(len(report)))

    def test_bottlenecks_rank_by_busy_time(self):
        report = self._report()
        ranked = report.bottlenecks(top=len(report))
        busy = [link.busy_time for link in ranked]
        assert busy == sorted(busy, reverse=True)
        assert len(report.bottlenecks(top=2)) == 2
        assert report.bottlenecks(top=0) == []

    def test_zero_prediction_flags_every_used_link(self):
        sample = measure_alltoall(
            get_cluster("myrinet"), 4, 8192, reps=1, observe=True
        )
        obs = sample.observed
        topo = get_cluster("myrinet").topology(4)
        report = ContentionReport.from_timeline(
            obs.timeline, topo, np.zeros((4, 4))
        )
        assert not report.matches_prediction
        assert report.mismatches()
        assert "deviate" in report.render()

    def test_matching_report_renders_the_verdict(self):
        report = self._report()
        assert "MED" in report.render()
        payload = report.to_dict()
        assert payload["matches_prediction"] == report.matches_prediction
        assert len(payload["links"]) == len(report)
        assert {"observed_peak", "predicted_peak"} <= set(
            payload["links"][0]
        )

    def test_link_count_mismatch_is_rejected(self):
        topo = _switch(3)
        with pytest.raises(ValueError, match="links"):
            ContentionReport.from_timeline(
                LinkTimeline(2), topo, _uniform(3)
            )


class TestObservationRider:
    """observe=True must not perturb results or cache-visible payloads."""

    def test_observation_does_not_change_the_sample(self):
        cluster = get_cluster("myrinet")
        plain = measure_alltoall(cluster, 4, 8192, reps=2)
        observed = measure_alltoall(cluster, 4, 8192, reps=2, observe=True)
        assert observed == plain  # rider attrs are not dataclass fields
        assert not hasattr(plain, "observed")
        assert hasattr(observed, "observed")

    def test_observation_render_mentions_the_engine(self):
        obs = measure_alltoall(
            get_cluster("myrinet"), 4, 8192, reps=1, observe=True
        ).observed
        text = obs.render()
        assert "engine" in text and "fluid" in text
        assert "trace events" in text
