"""Observability: the process-safe metrics registry.

Covers the three metric kinds, the snapshot/merge/diff protocol, and —
the load-bearing part — its threading through the stack: engine runs
land in ``sim.*`` counters, the sweep cache counts hits/misses/bytes,
and worker-side deltas ride ``TaskOutcome.metrics`` across the process
executor back into the parent registry without double counting.
"""

from __future__ import annotations

import pytest

from repro.exec.task import ExecutionTask, run_task
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    record_sim_stats,
)
from repro.simnet.stats import SimStats
from repro.sweeps.cache import ResultCache
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepPoint


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test starts and ends with an empty process registry."""
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def _points(sizes=(2048, 8192, 32768, 131072)):
    return [
        SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=size,
            algorithm="direct", seed=0, reps=1,
        )
        for size in sizes
    ]


def _total(name: str) -> float:
    """Summed-over-labels value of one counter in the global registry."""
    metric = REGISTRY.get(name)
    assert metric is not None, f"{name} never registered"
    return sum(metric.series.values())


class TestCounter:
    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.runs")
        c.inc(1, engine="fluid")
        c.inc(2, engine="vector")
        c.inc(1, engine="fluid")
        assert c.value(engine="fluid") == 2.0
        assert c.value(engine="vector") == 2.0
        assert c.value(engine="unseen") is None

    def test_unlabeled_series_and_rejection_of_negatives(self):
        c = MetricsRegistry().counter("hits")
        c.inc()
        c.inc(0.5)
        assert c.value() == 1.5
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1)

    def test_label_order_does_not_split_series(self):
        c = MetricsRegistry().counter("x")
        c.inc(1, a=1, b=2)
        c.inc(1, b=2, a=1)
        assert c.value(a=1, b=2) == 2.0


class TestGaugeAndHistogram:
    def test_gauge_keeps_the_last_write(self):
        g = MetricsRegistry().gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value() == 2.0

    def test_histogram_buckets_and_aggregates(self):
        h = MetricsRegistry().histogram("t", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        cell = h.value()
        assert cell["counts"] == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(6.05)

    def test_histogram_requires_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        snap = reg.snapshot()
        reg.counter("a").inc(5)
        assert snap["a"]["values"][""] == 1.0


class TestSnapshotMergeDiff:
    def _registry(self, runs=2.0, depth=3.0):
        reg = MetricsRegistry()
        reg.counter("runs").inc(runs, engine="fluid")
        reg.gauge("depth").set(depth)
        reg.histogram("t", buckets=(1.0,)).observe(0.5)
        return reg

    def test_merge_sums_counters_and_overwrites_gauges(self):
        parent = self._registry(runs=2, depth=3)
        worker = self._registry(runs=5, depth=7)
        parent.merge(worker.snapshot())
        assert parent.counter("runs").value(engine="fluid") == 7.0
        assert parent.gauge("depth").value() == 7.0
        assert parent.histogram("t", buckets=(1.0,)).value()["count"] == 2

    def test_merge_creates_unseen_metrics(self):
        parent = MetricsRegistry()
        parent.merge(self._registry().snapshot())
        assert parent.counter("runs").value(engine="fluid") == 2.0

    def test_merge_none_and_empty_are_noops(self):
        reg = MetricsRegistry()
        reg.merge(None)
        reg.merge({})
        assert reg.names() == []

    def test_merge_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge({"x": {"kind": "summary", "values": {}}})

    def test_snapshot_merge_round_trip_is_exact(self):
        a, b = self._registry(runs=1), self._registry(runs=9)
        combined = merge_snapshots(a.snapshot(), b.snapshot(), None)
        restored = MetricsRegistry()
        restored.merge(combined)
        assert restored.counter("runs").value(engine="fluid") == 10.0
        assert restored.snapshot() == combined

    def test_diff_subtracts_and_drops_idle_series(self):
        reg = self._registry(runs=2)
        before = reg.snapshot()
        reg.counter("runs").inc(3, engine="fluid")
        reg.counter("other").inc(0)  # registered but idle
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["runs"]["values"]["engine=fluid"] == 3.0
        assert "other" not in delta

    def test_diff_of_idle_stretch_keeps_only_gauges(self):
        # Counters/histograms subtract away to nothing; a gauge is a
        # reading, not an accumulation, so it passes through unchanged.
        reg = self._registry()
        snap = reg.snapshot()
        delta = diff_snapshots(snap, snap)
        assert set(delta) == {"depth"}
        assert delta["depth"]["values"][""] == 3.0
        assert diff_snapshots(None, None) == {}

    def test_diff_of_idle_counters_is_empty(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(2)
        snap = reg.snapshot()
        assert diff_snapshots(snap, snap) == {}

    def test_diff_histograms_subtract_per_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("t", buckets=(1.0,))
        h.observe(0.5)
        before = reg.snapshot()
        h.observe(2.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["t"]["values"][""]["counts"] == [0, 1]
        assert delta["t"]["buckets"] == [1.0]


class TestRecordSimStats:
    def test_stats_land_labeled_by_engine(self):
        record_sim_stats(SimStats(
            engine="vector", epochs=3, resolves=2, events=10,
            losses=1, stalls=0, solve_reuses=4,
        ))
        assert REGISTRY.counter("sim.runs").value(engine="vector") == 1.0
        assert REGISTRY.counter("sim.epochs").value(engine="vector") == 3.0
        assert REGISTRY.counter("sim.solve_reuses").value(engine="vector") == 4.0

    def test_none_is_a_noop(self):
        record_sim_stats(None)
        assert REGISTRY.names() == []


class TestMeasurementThreading:
    def test_engine_runs_register_sim_counters(self):
        SweepRunner(cache=None).run_points(_points(sizes=(2048,)))
        assert _total("sim.runs") == 1.0
        assert _total("measure.samples") == 1.0
        assert _total("sim.epochs") > 0

    def test_cache_counters_track_misses_hits_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run_points(_points(sizes=(2048, 8192)))
        assert _total("cache.misses") == 2.0
        assert _total("cache.writes") == 2.0
        assert _total("cache.bytes_written") > 0
        SweepRunner(cache=cache).run_points(_points(sizes=(2048, 8192)))
        assert _total("cache.hits") == 2.0
        assert _total("cache.bytes_read") > 0


class TestExecutorRoundTrip:
    """The tentpole invariant: worker metrics land in the parent exactly
    once, and observability changes nothing about the rows."""

    def test_task_outcome_carries_its_delta(self):
        outcome = run_task(ExecutionTask(index=0, point=_points()[0]))
        assert outcome.ok
        assert outcome.metrics is not None
        assert outcome.metrics["sim.runs"]["values"]["engine=fluid"] == 1.0

    def test_process_executor_metrics_land_in_parent(self):
        points = _points()
        with SweepRunner(workers=2, cache=None, executor="process") as runner:
            result = runner.run_points(points)
        assert result.n_simulated == len(points)
        # The simulations ran in worker processes; their deltas must
        # have merged into this (parent) process's registry.
        assert _total("sim.runs") == float(len(points))
        assert _total("measure.samples") == float(len(points))

    def test_serial_execution_does_not_double_count(self):
        # In-process execution increments the parent registry directly;
        # merging the outcome delta again would double every counter.
        points = _points(sizes=(2048, 8192))
        SweepRunner(workers=1, cache=None).run_points(points)
        assert _total("sim.runs") == 2.0

    def test_futures_executor_does_not_double_count(self):
        points = _points(sizes=(2048, 8192))
        SweepRunner(workers=2, cache=None, executor="futures").run_points(points)
        assert _total("sim.runs") == 2.0

    def test_rows_bit_identical_across_executors(self):
        points = _points()
        serial = SweepRunner(workers=1, cache=None).run_points(points)
        with SweepRunner(workers=2, cache=None, executor="process") as runner:
            pooled = runner.run_points(points)
        assert serial.to_rows() == pooled.to_rows()
