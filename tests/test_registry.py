"""Unit tests for the plugin registries and their deprecation shims."""

import pytest

from repro.exceptions import DuplicateNameError, UnknownNameError
from repro.registry import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERS,
    TOPOLOGIES,
    Registry,
    normalize_name,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "raw, canonical",
        [
            ("fast-ethernet", "fast-ethernet"),
            ("fast_ethernet", "fast-ethernet"),
            ("Fast Ethernet", "fast-ethernet"),
            ("  FAST_ETHERNET  ", "fast-ethernet"),
            ("fast__ethernet", "fast-ethernet"),
        ],
    )
    def test_spelling_variants_collapse(self, raw, canonical):
        assert normalize_name(raw) == canonical

    def test_near_miss_cluster_names_resolve(self):
        # The satellite bugfix: near-miss names must not be rejected.
        assert CLUSTERS.canonical("fast_ethernet") == "fast-ethernet"
        assert CLUSTERS.canonical("Fast-Ethernet") == "fast-ethernet"
        assert CLUSTERS.canonical("GIGABIT_ETHERNET") == "gigabit-ethernet"

    def test_aliases_resolve_but_do_not_enumerate(self):
        assert CLUSTERS.canonical("fe") == "fast-ethernet"
        assert CLUSTERS.canonical("gige") == "gigabit-ethernet"
        assert "fe" not in CLUSTERS.names()
        assert CLUSTERS.names() == [
            name for name in CLUSTERS.names() if name == normalize_name(name)
        ]


class TestLookup:
    def test_unknown_name_lists_known_set(self):
        with pytest.raises(UnknownNameError, match="unknown cluster 'infiniband'"):
            CLUSTERS.get("infiniband")
        with pytest.raises(UnknownNameError, match="known: "):
            CLUSTERS.get("infiniband")

    def test_unknown_name_is_both_keyerror_and_valueerror(self):
        # Pre-registry call sites caught KeyError (clusters) or
        # ValueError (backends); both contracts must survive.
        with pytest.raises(KeyError):
            CLUSTERS.get("infiniband")
        with pytest.raises(ValueError):
            BACKENDS.get("carrier-pigeon")

    def test_contains_is_alias_tolerant(self):
        assert "fast_ethernet" in CLUSTERS
        assert "fe" in CLUSTERS
        assert "infiniband" not in CLUSTERS

    def test_builtins_present(self):
        assert CLUSTERS.names() == ["fast-ethernet", "gigabit-ethernet", "myrinet"]
        assert TOPOLOGIES.names() == ["edge-core", "single-switch"]
        assert ALGORITHMS.names() == [
            "alltoallv-direct", "alltoallv-rounds",
            "bruck", "direct", "ring", "rounds",
        ]
        assert BACKENDS.names() == ["mpi4py", "sim"]
        from repro.registry import PATTERNS

        assert PATTERNS.names() == [
            "block-sparse", "hotspot", "permutation", "random-sparse",
            "shift", "uniform", "zipf",
        ]


class TestRegistration:
    def test_register_and_unregister(self):
        reg = Registry("widget")

        @reg.register("my-widget", aliases=("w",))
        def factory():
            return 42

        assert reg.get("My_Widget")() == 42
        assert reg.get("w")() == 42
        reg.unregister("w")  # by alias
        assert "my-widget" not in reg

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("a", object())
        with pytest.raises(DuplicateNameError, match="already registered"):
            reg.register("a", object())
        with pytest.raises(DuplicateNameError):
            reg.register("b", object(), aliases=("A",))

    def test_replace_allows_overwrite(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_empty_name_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="non-empty"):
            reg.register("  ", object())


class TestDeprecationShims:
    def test_legacy_clusters_dict_warns_but_works(self):
        from repro.clusters.profiles import CLUSTERS as LEGACY

        with pytest.warns(DeprecationWarning, match="repro.clusters.profiles.CLUSTERS"):
            profile = LEGACY["fast-ethernet"]()
        assert profile.name == "fast-ethernet"
        with pytest.warns(DeprecationWarning):
            assert sorted(LEGACY) == ["fast-ethernet", "gigabit-ethernet", "myrinet"]
        with pytest.warns(DeprecationWarning):
            assert "myrinet" in LEGACY
        with pytest.warns(DeprecationWarning):
            assert len(LEGACY) == 3

    def test_legacy_algorithms_dict_warns_but_works(self):
        from repro.simmpi.collectives import ALGORITHMS as LEGACY, alltoall_direct

        with pytest.warns(DeprecationWarning, match="repro.simmpi.collectives.ALGORITHMS"):
            assert LEGACY["direct"] is alltoall_direct
        with pytest.warns(DeprecationWarning):
            assert sorted(LEGACY) == [
                "alltoallv-direct", "alltoallv-rounds",
                "bruck", "direct", "ring", "rounds",
            ]

    def test_legacy_imports_still_resolve(self):
        # Old import paths keep working (the shim objects are re-exported).
        from repro.clusters import CLUSTERS as a  # noqa: F401
        from repro.simmpi import ALGORITHMS as b  # noqa: F401
        from repro.simnet.topology import edge_core, single_switch  # noqa: F401
        from repro.measure import get_backend  # noqa: F401

    def test_legacy_dict_missing_key_is_keyerror(self):
        from repro.clusters.profiles import CLUSTERS as LEGACY

        with pytest.warns(DeprecationWarning), pytest.raises(KeyError):
            LEGACY["infiniband"]


class TestBackendRegistry:
    def test_get_backend_routes_through_registry(self, gige_cluster):
        from repro.measure.backends import SimBackend, get_backend

        assert isinstance(get_backend("Simulator", gige_cluster), SimBackend)

    def test_unknown_backend_message(self):
        from repro.measure.backends import get_backend

        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("carrier-pigeon")
