"""Unit + property tests for max-min fair allocation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.fairness import FlowPaths, max_min_allocation


def alloc(capacities, paths):
    return max_min_allocation(
        np.asarray(capacities, dtype=float), FlowPaths.from_lists(paths)
    )


class TestBasics:
    def test_single_flow_gets_link_capacity(self):
        result = alloc([100.0], [(0,)])
        assert result.rates[0] == pytest.approx(100.0)

    def test_two_flows_share_equally(self):
        result = alloc([100.0], [(0,), (0,)])
        assert result.rates == pytest.approx([50.0, 50.0])

    def test_disjoint_flows_do_not_interact(self):
        result = alloc([100.0, 40.0], [(0,), (1,)])
        assert result.rates == pytest.approx([100.0, 40.0])

    def test_flow_limited_by_tightest_link(self):
        result = alloc([100.0, 10.0], [(0, 1)])
        assert result.rates[0] == pytest.approx(10.0)

    def test_empty_flow_set(self):
        result = alloc([100.0], [])
        assert result.rates.size == 0
        assert not result.saturated.any()

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="empty path"):
            alloc([100.0], [()])

    def test_unknown_link_rejected(self):
        with pytest.raises(ValueError, match="beyond"):
            alloc([100.0], [(3,)])


class TestMaxMinSemantics:
    def test_classic_three_flow_example(self):
        # Flow A uses links 0+1, B uses 0, C uses 1.
        # cap(0)=10, cap(1)=20 -> A=5, B=5, C=15 (textbook max-min).
        result = alloc([10.0, 20.0], [(0, 1), (0,), (1,)])
        assert result.rates == pytest.approx([5.0, 5.0, 15.0])

    def test_bottleneck_frees_capacity_elsewhere(self):
        # Two flows on link0 (cap 10) also cross link1 (cap 100);
        # a third flow on link1 alone gets the leftovers.
        result = alloc([10.0, 100.0], [(0, 1), (0, 1), (1,)])
        assert result.rates[0] == pytest.approx(5.0)
        assert result.rates[1] == pytest.approx(5.0)
        assert result.rates[2] == pytest.approx(90.0)

    def test_saturated_flags(self):
        result = alloc([10.0, 1000.0], [(0, 1)])
        assert bool(result.saturated[0]) is True
        assert bool(result.saturated[1]) is False

    def test_link_flow_count(self):
        result = alloc([10.0, 10.0], [(0,), (0, 1)])
        assert result.link_flow_count.tolist() == [2, 1]

    def test_link_load_never_exceeds_capacity(self):
        result = alloc([10.0, 7.0, 3.0], [(0, 1), (1, 2), (0, 2), (0,)])
        assert np.all(result.link_load <= np.array([10.0, 7.0, 3.0]) * (1 + 1e-9))


@st.composite
def random_networks(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    capacities = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e4),
            min_size=n_links,
            max_size=n_links,
        )
    )
    n_flows = draw(st.integers(min_value=1, max_value=12))
    paths = []
    for _ in range(n_flows):
        length = draw(st.integers(min_value=1, max_value=n_links))
        path = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        paths.append(tuple(path))
    return capacities, paths


class TestProperties:
    @given(random_networks())
    def test_feasibility_no_link_oversubscribed(self, network):
        capacities, paths = network
        result = alloc(capacities, paths)
        assert np.all(
            result.link_load <= np.asarray(capacities) * (1 + 1e-6) + 1e-9
        )

    @given(random_networks())
    def test_all_rates_positive(self, network):
        capacities, paths = network
        result = alloc(capacities, paths)
        assert np.all(result.rates > 0)

    @given(random_networks())
    def test_every_flow_crosses_a_saturated_link(self, network):
        # Max-min optimality: each flow is blocked by at least one
        # saturated link (otherwise its rate could be raised).
        capacities, paths = network
        result = alloc(capacities, paths)
        for flow_idx, path in enumerate(paths):
            assert any(result.saturated[link] for link in path), (
                f"flow {flow_idx} has no bottleneck"
            )

    @given(random_networks())
    def test_symmetry_identical_paths_equal_rates(self, network):
        capacities, paths = network
        # Duplicate the first flow; the two clones must receive equal rate.
        paths = list(paths) + [paths[0]]
        result = alloc(capacities, paths)
        assert result.rates[0] == pytest.approx(result.rates[-1], rel=1e-9)

    @given(random_networks())
    def test_scale_invariance(self, network):
        capacities, paths = network
        base = alloc(capacities, paths)
        scaled = alloc(np.asarray(capacities) * 3.0, paths)
        assert scaled.rates == pytest.approx(base.rates * 3.0, rel=1e-9)


class TestFlowPaths:
    def test_from_lists_roundtrip(self):
        paths = FlowPaths.from_lists([(0, 2), (1,), (2, 0, 1)])
        assert paths.n_flows == 3
        assert paths.indptr.tolist() == [0, 2, 3, 6]
        assert paths.link_ids.tolist() == [0, 2, 1, 2, 0, 1]

    def test_gather_rows_vectorised_ragged(self):
        paths = FlowPaths.from_lists([(0, 2), (1,), (2, 0, 1)])
        rows = paths.gather_rows(np.array([0, 2]))
        assert paths.link_ids[rows].tolist() == [0, 2, 2, 0, 1]

    def test_gather_rows_empty(self):
        paths = FlowPaths.from_lists([(0,)])
        assert paths.gather_rows(np.array([], dtype=np.int64)).size == 0
