"""Unit tests for ASCII plotting and CSV IO."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_plot, scatter_plot, surface_table
from repro.analysis.io import read_csv, rows_from_series, write_csv


class TestLinePlot:
    def test_contains_axes_and_legend(self):
        text = line_plot(
            {"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [2, 2, 2])},
            title="demo", xlabel="x", ylabel="y",
        )
        assert "demo" in text
        assert "[*] a" in text and "[+] b" in text
        assert "x: x" in text

    def test_handles_constant_series(self):
        text = line_plot({"flat": ([0, 1], [5.0, 5.0])})
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})


class TestScatterPlot:
    def test_overlay_series_rendered(self):
        text = scatter_plot(
            [1, 2, 3, 4], [1.0, 1.1, 0.9, 3.0],
            overlay={"avg": ([1, 4], [1.0, 1.5])},
        )
        assert "samples" in text
        assert "avg" in text


class TestSurfaceTable:
    def test_grid_rendered_with_labels(self):
        text = surface_table(
            [4, 8], [100, 200], np.array([[1.0, 2.0], [3.0, 4.0]]),
            title="surf",
        )
        assert "surf" in text
        assert "100" in text and "200" in text
        assert "3.0000" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            surface_table([1], [1, 2], np.zeros((2, 2)))


class TestCsv:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "data.csv"
        write_csv(path, ["a", "b"], [{"a": 1, "b": 2.5}, {"a": 3, "b": ""}])
        rows = read_csv(path)
        assert rows[0]["a"] == "1"
        assert rows[0]["b"] == "2.5"
        assert len(rows) == 2

    def test_rows_from_series_pivots_on_x(self):
        fieldnames, rows = rows_from_series(
            {"s1": ([1, 2], [10, 20]), "s2": ([2, 3], [200, 300])},
            x_name="k",
        )
        assert fieldnames == ["k", "s1", "s2"]
        assert rows[0] == {"k": 1.0, "s1": 10.0, "s2": ""}
        assert rows[1] == {"k": 2.0, "s1": 20.0, "s2": 200.0}
