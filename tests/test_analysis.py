"""Unit tests for ASCII plotting and CSV IO."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_plot, scatter_plot, surface_table
from repro.analysis.io import (
    coerce_value,
    read_csv,
    read_rows,
    rows_from_series,
    write_csv,
)


class TestLinePlot:
    def test_contains_axes_and_legend(self):
        text = line_plot(
            {"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [2, 2, 2])},
            title="demo", xlabel="x", ylabel="y",
        )
        assert "demo" in text
        assert "[*] a" in text and "[+] b" in text
        assert "x: x" in text

    def test_handles_constant_series(self):
        text = line_plot({"flat": ([0, 1], [5.0, 5.0])})
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})


class TestScatterPlot:
    def test_overlay_series_rendered(self):
        text = scatter_plot(
            [1, 2, 3, 4], [1.0, 1.1, 0.9, 3.0],
            overlay={"avg": ([1, 4], [1.0, 1.5])},
        )
        assert "samples" in text
        assert "avg" in text


class TestSurfaceTable:
    def test_grid_rendered_with_labels(self):
        text = surface_table(
            [4, 8], [100, 200], np.array([[1.0, 2.0], [3.0, 4.0]]),
            title="surf",
        )
        assert "surf" in text
        assert "100" in text and "200" in text
        assert "3.0000" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            surface_table([1], [1, 2], np.zeros((2, 2)))


class TestCsv:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "data.csv"
        write_csv(path, ["a", "b"], [{"a": 1, "b": 2.5}, {"a": 3, "b": ""}])
        rows = read_csv(path)
        assert rows[0]["a"] == "1"
        assert rows[0]["b"] == "2.5"
        assert len(rows) == 2

    def test_rows_from_series_pivots_on_x(self):
        fieldnames, rows = rows_from_series(
            {"s1": ([1, 2], [10, 20]), "s2": ([2, 3], [200, 300])},
            x_name="k",
        )
        assert fieldnames == ["k", "s1", "s2"]
        assert rows[0] == {"k": 1.0, "s1": 10.0, "s2": ""}
        assert rows[1] == {"k": 2.0, "s1": 20.0, "s2": 200.0}


class TestTypedRows:
    ROWS = [
        {"cluster": "gige", "n_processes": 8, "msg_size": 2048,
         "mean_time": 0.0125, "std_time": "", "error": ""},
        {"cluster": "gige", "n_processes": 16, "msg_size": 1048576,
         "mean_time": 1.5, "std_time": 0.01, "error": "boom"},
    ]
    FIELDS = ["cluster", "n_processes", "msg_size", "mean_time",
              "std_time", "error"]

    def test_coerce_value_specificity(self):
        assert coerce_value("") is None
        assert coerce_value(None) is None
        assert coerce_value("2048") == 2048
        assert isinstance(coerce_value("2048"), int)
        assert coerce_value("0.0125") == pytest.approx(0.0125)
        assert isinstance(coerce_value("0.0125"), float)
        assert coerce_value("1e-3") == pytest.approx(1e-3)
        assert coerce_value("direct") == "direct"
        # Non-string oddities (DictReader's spill list for a row with
        # extra cells) pass through instead of raising TypeError.
        assert coerce_value(["3"]) == ["3"]

    def test_read_rows_tolerates_extra_cells(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2,3\n")
        rows = read_rows(path)
        assert rows[0]["a"] == 1 and rows[0]["b"] == 2
        assert rows[0][None] == ["3"]  # spill preserved, no crash
        # A typo'd schema on a ragged file still reports cleanly (the
        # restkey must not leak into the header comparison).
        with pytest.raises(ValueError, match="not in file"):
            read_rows(path, schema={"bogus": int})

    def test_read_rows_auto_coerces_csv(self, tmp_path):
        path = write_csv(tmp_path / "rows.csv", self.FIELDS, self.ROWS)
        rows = read_rows(path)
        assert rows[0]["n_processes"] == 8
        assert isinstance(rows[0]["n_processes"], int)
        assert isinstance(rows[0]["mean_time"], float)
        assert rows[0]["std_time"] is None  # empty cell, not ""
        assert rows[0]["cluster"] == "gige"
        # No string math: doubling a size must be arithmetic.
        assert rows[0]["msg_size"] * 2 == 4096

    def test_read_rows_vs_read_csv_strings(self, tmp_path):
        path = write_csv(tmp_path / "rows.csv", self.FIELDS, self.ROWS)
        legacy = read_csv(path)
        assert legacy[0]["msg_size"] == "2048"  # the old string trap
        typed = read_rows(path)
        assert typed[0]["msg_size"] == 2048

    def test_read_rows_schema_overrides(self, tmp_path):
        path = write_csv(tmp_path / "rows.csv", self.FIELDS, self.ROWS)
        rows = read_rows(path, schema={"cluster": str.upper, "n_processes": float})
        assert rows[0]["cluster"] == "GIGE"
        assert isinstance(rows[0]["n_processes"], float)
        # Unlisted columns still auto-coerce.
        assert isinstance(rows[0]["msg_size"], int)

    def test_read_rows_schema_unknown_column_rejected(self, tmp_path):
        path = write_csv(tmp_path / "rows.csv", self.FIELDS, self.ROWS)
        with pytest.raises(ValueError, match="not in file"):
            read_rows(path, schema={"bogus": int})

    def test_read_rows_jsonl(self, tmp_path):
        import json

        path = tmp_path / "rows.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in self.ROWS) + "\n"
        )
        rows = read_rows(path)
        assert rows[0]["msg_size"] == 2048
        assert rows[1]["error"] == "boom"
        converted = read_rows(path, schema={"n_processes": float})
        assert isinstance(converted[0]["n_processes"], float)
        # A typo'd schema column is rejected on JSONL too, not silently
        # ignored.
        with pytest.raises(ValueError, match="not in file"):
            read_rows(path, schema={"n_procs": float})

    def test_read_rows_jsonl_heterogeneous_schema_union(self, tmp_path):
        import json

        # JSONL lines may carry different keys; a schema column present
        # only in later rows is still legal.
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"n_processes": 4, "mean_time": 0.01}) + "\n"
            + json.dumps({"n_processes": 8, "mean_time": 0.02,
                          "std_time": 0.001}) + "\n"
        )
        rows = read_rows(path, schema={"std_time": float})
        assert "std_time" not in rows[0]
        assert isinstance(rows[1]["std_time"], float)

    def test_read_rows_feeds_model_fitting(self, tmp_path):
        # End-to-end satellite check: CSV -> typed rows -> samples -> fit.
        from repro.exec.sinks import ROW_FIELDS
        from repro.models import get_model, samples_from_rows

        rows = [
            {"cluster": "x", "algorithm": "direct", "pattern": "uniform",
             "n_processes": n, "msg_size": m, "seed": 0, "reps": 1,
             "mean_time": (n - 1) * (1e-4 + m * 2e-8), "std_time": 0.0,
             "cached": 0, "error": ""}
            for n in (4, 8) for m in (2_048, 65_536, 524_288)
        ]
        path = write_csv(tmp_path / "sweep.csv", ROW_FIELDS, rows)
        samples = samples_from_rows(read_rows(path))
        fitted = get_model("hockney").fit(samples)
        assert fitted.params["alpha"] == pytest.approx(1e-4, rel=1e-5)
        assert fitted.params["beta"] == pytest.approx(2e-8, rel=1e-5)
