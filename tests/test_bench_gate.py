"""Observability: the benchmark-record schema and regression gate.

Covers metric/record validation, min-of-N comparison semantics in both
directions, the acceptance fixture (a synthetically injected 2x
slowdown must fail ``bench compare``), record loading, trajectory
rendering, and the CLI surface end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    SCHEMA,
    Finding,
    compare,
    load_records,
    make_metric,
    make_record,
    render_findings,
    render_trajectory,
)


def _record(bench="engine_throughput", **metrics):
    cells = {
        name: (value if isinstance(value, dict) else make_metric(value))
        for name, value in metrics.items()
    }
    return make_record(bench, cells, {})


class TestMakeMetric:
    def test_defaults_and_coercion(self):
        cell = make_metric(3)
        assert cell == {
            "value": 3.0, "direction": "higher",
            "tolerance": 0.25, "unit": "",
        }

    def test_rejects_bad_direction_and_tolerance(self):
        with pytest.raises(ValueError, match="direction"):
            make_metric(1.0, direction="sideways")
        with pytest.raises(ValueError, match="tolerance"):
            make_metric(1.0, tolerance=1.0)
        with pytest.raises(ValueError, match="tolerance"):
            make_metric(1.0, tolerance=-0.1)


class TestMakeRecord:
    def test_legacy_keys_ride_at_the_top_level(self):
        legacy = {"speedup": {"64": 14.2}, "points": 64}
        record = make_record(
            "engine_throughput", {"m": make_metric(1.0)}, legacy
        )
        assert record["schema"] == SCHEMA
        assert record["speedup"]["64"] == 14.2
        assert record["points"] == 64
        assert record["metrics"]["m"]["value"] == 1.0
        assert "git_sha" in record["fingerprint"]
        # The input is not mutated.
        assert "schema" not in legacy

    def test_incomplete_metric_cells_are_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            make_record("b", {"m": {"value": 1.0}}, {})


class TestCompare:
    def test_within_tolerance_is_ok(self):
        base = [_record(speed=make_metric(10.0, tolerance=0.25))]
        cur = [_record(speed=make_metric(8.0, tolerance=0.25))]
        (finding,) = compare(base, cur)
        assert finding.status == "ok"
        assert finding.ok

    def test_two_x_slowdown_regresses(self):
        # The acceptance fixture: a synthetic 2x slowdown on a tracked
        # higher-is-better metric must fail the gate.
        base = [_record(speed=make_metric(10.0, tolerance=0.25))]
        slow = [_record(speed=make_metric(5.0, tolerance=0.25))]
        (finding,) = compare(base, slow)
        assert finding.status == "regression"
        assert not finding.ok
        assert finding.ratio == pytest.approx(0.5)

    def test_lower_is_better_regresses_upward(self):
        base = [_record(
            overhead=make_metric(1.0, direction="lower", tolerance=0.05)
        )]
        ok = [_record(
            overhead=make_metric(1.04, direction="lower", tolerance=0.05)
        )]
        bad = [_record(
            overhead=make_metric(2.0, direction="lower", tolerance=0.05)
        )]
        assert compare(base, ok)[0].status == "ok"
        assert compare(base, bad)[0].status == "regression"

    def test_min_of_n_uses_each_sides_best(self):
        # Three noisy baseline runs, two noisy current runs: the gate
        # compares best-vs-best, so one slow outlier never fails it.
        base = [
            _record(speed=make_metric(v, tolerance=0.25))
            for v in (10.0, 7.0, 9.5)
        ]
        cur = [
            _record(speed=make_metric(v, tolerance=0.25))
            for v in (4.0, 9.0)
        ]
        (finding,) = compare(base, cur)
        assert finding.baseline == 10.0
        assert finding.current == 9.0
        assert finding.status == "ok"

    def test_missing_tracked_metric_fails(self):
        base = [_record(speed=10.0, other=1.0)]
        cur = [_record(other=1.0)]  # same bench, dropped a metric
        by_name = {f.metric: f for f in compare(base, cur)}
        assert by_name["speed"].status == "missing"
        assert not by_name["speed"].ok
        assert by_name["other"].status == "ok"

    def test_absent_bench_is_skipped_not_failed(self):
        base = [_record(bench="a", speed=10.0)]
        cur = [_record(bench="b", speed=10.0)]
        statuses = {(f.bench, f.status) for f in compare(base, cur)}
        # Bench "a" produces no finding at all; bench "b" is new.
        assert statuses == {("b", "new")}

    def test_new_metrics_pass(self):
        base = [_record(speed=10.0)]
        cur = [_record(speed=10.0, extra=1.0)]
        by_name = {f.metric: f for f in compare(base, cur)}
        assert by_name["extra"].status == "new"
        assert by_name["extra"].ok

    def test_boolean_invariants_gate_exactly(self):
        base = [_record(identical=make_metric(1.0, tolerance=0.0))]
        flipped = [_record(identical=make_metric(0.0, tolerance=0.0))]
        assert compare(base, base)[0].status == "ok"
        assert compare(base, flipped)[0].status == "regression"

    def test_baseline_side_sets_the_bar(self):
        # A current record claiming a looser tolerance cannot relax the
        # committed baseline's.
        base = [_record(speed=make_metric(10.0, tolerance=0.1))]
        cur = [_record(speed=make_metric(8.0, tolerance=0.9))]
        (finding,) = compare(base, cur)
        assert finding.tolerance == 0.1
        assert finding.status == "regression"


class TestLoadRecords:
    def test_scans_directories_and_skips_pre_schema_files(self, tmp_path):
        (tmp_path / "BENCH_a.json").write_text(json.dumps(_record()))
        (tmp_path / "legacy.json").write_text('{"bench": "old-shape"}')
        (tmp_path / "notes.txt").write_text("not json")
        records = load_records([tmp_path])
        assert len(records) == 1
        assert records[0]["schema"] == SCHEMA

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records([tmp_path / "nope.json"])

    def test_invalid_json_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_records([bad])


class TestRendering:
    def test_findings_table_flags_regressions(self):
        findings = [
            Finding("engine", "speed", "ok", 10.0, 9.0),
            Finding("engine", "slow", "regression", 10.0, 5.0),
            Finding("engine", "gone", "missing", 10.0, None),
        ]
        text = render_findings(findings)
        assert "REGRESSION" in text
        assert "MISSING" in text
        assert "2 REGRESSED" in text

    def test_all_ok_summary(self):
        text = render_findings([Finding("e", "m", "ok", 1.0, 1.0)])
        assert "all within tolerance" in text

    def test_trajectory_groups_per_metric_in_ledger_order(self):
        entries = [
            {"ts": 1000.0, "record": _record(speed=10.0)},
            {"ts": 2000.0, "record": _record(speed=12.0)},
            {"record": {"schema": "other", "bench": "x"}},  # skipped
        ]
        text = render_trajectory(entries)
        assert "engine_throughput · speed" in text
        assert text.index("10") < text.index("12")

    def test_trajectory_filters_and_empty_message(self):
        entries = [{"ts": 1.0, "record": _record(speed=10.0)}]
        assert "no tracked bench metrics" in render_trajectory(
            entries, bench="other-bench"
        )
        assert "speed" in render_trajectory(entries, metric="speed")


class TestCliGate:
    """End-to-end acceptance: the CLI gate on real-shaped fixtures."""

    def _write(self, path, record):
        path.write_text(json.dumps(record, indent=2) + "\n")

    def test_identical_records_pass(self, tmp_path, capsys):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        record = _record(speed=make_metric(10.0, unit="x"))
        self._write(base / "BENCH_engine.json", record)
        self._write(cur / "BENCH_engine.json", record)
        assert main([
            "bench", "compare", "--baseline", str(base), str(cur),
        ]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_injected_two_x_slowdown_fails(self, tmp_path, capsys):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(
            base / "BENCH_engine.json",
            _record(speed=make_metric(14.0, tolerance=0.3, unit="x")),
        )
        self._write(
            cur / "BENCH_engine.json",
            _record(speed=make_metric(7.0, tolerance=0.3, unit="x")),
        )
        assert main([
            "bench", "compare", "--baseline", str(base), str(cur),
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "1 REGRESSED" in out

    def test_missing_baseline_path_is_a_usage_error(self, tmp_path, capsys):
        cur = tmp_path / "cur"
        cur.mkdir()
        self._write(cur / "BENCH_engine.json", _record(speed=10.0))
        assert main([
            "bench", "compare",
            "--baseline", str(tmp_path / "missing"), str(cur),
        ]) == 2

    def test_empty_baseline_dir_is_a_usage_error(self, tmp_path, capsys):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(cur / "BENCH_engine.json", _record(speed=10.0))
        assert main([
            "bench", "compare", "--baseline", str(base), str(cur),
        ]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_ingest_then_report(self, monkeypatch, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        artifact = tmp_path / "BENCH_engine.json"
        self._write(artifact, _record(speed=make_metric(10.0, unit="x")))
        assert main(["bench", "ingest", str(artifact)]) == 0
        assert "ingested 1 bench record(s)" in capsys.readouterr().out
        assert main(["bench", "report"]) == 0
        out = capsys.readouterr().out
        assert "engine_throughput · speed" in out
        assert "10 x" in out

    def test_ingest_with_disabled_ledger_fails(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_LEDGER", "off")
        artifact = tmp_path / "BENCH_engine.json"
        self._write(artifact, _record(speed=10.0))
        assert main(["bench", "ingest", str(artifact)]) == 1
        assert "disabled" in capsys.readouterr().err

    def test_committed_baselines_are_schema_conforming(self):
        from pathlib import Path

        baselines = Path(__file__).parent.parent / "benchmarks" / "baselines"
        records = load_records([baselines])
        assert len(records) == 6
        benches = {r["bench"] for r in records}
        assert benches == {
            "engine_throughput", "obs_overhead", "sweep_executor_throughput",
            "traffic_pattern_sweep", "cost_model_zoo", "placement_optimizers",
        }
        for record in records:
            assert record["metrics"], record["bench"]

    def test_committed_baselines_gate_a_two_x_slowdown(self, tmp_path):
        # The full acceptance path on the real committed baselines: take
        # one, halve every higher-is-better metric (double lower-is-
        # better), and the gate must fail.
        from pathlib import Path

        baselines = Path(__file__).parent.parent / "benchmarks" / "baselines"
        record = load_records([baselines / "BENCH_engine.json"])[0]
        slowed = json.loads(json.dumps(record))
        for cell in slowed["metrics"].values():
            if cell["direction"] == "higher":
                cell["value"] /= 2.0
            else:
                cell["value"] *= 2.0
        cur = tmp_path / "cur"
        cur.mkdir()
        self._write(cur / "BENCH_engine.json", slowed)
        assert main([
            "bench", "compare", "--baseline", str(baselines), str(cur),
        ]) == 1
