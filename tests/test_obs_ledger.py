"""Observability: the append-only JSONL run ledger.

Covers the environment contract (``REPRO_LEDGER`` path/disable
semantics), the never-raises append guarantee, entry filtering, and the
CLI threading: every ledgered command appends one fingerprinted entry
with wall time and a metrics delta.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.ledger import (
    DEFAULT_PATH,
    LEDGER_ENV,
    Ledger,
    default_ledger,
    environment_fingerprint,
    record_run,
)


class TestEnvironmentContract:
    def test_unset_means_the_default_path(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        ledger = default_ledger()
        assert ledger.enabled
        assert ledger.path == DEFAULT_PATH

    @pytest.mark.parametrize(
        "token", ["0", "off", "none", "false", "disabled", "OFF", " Off "]
    )
    def test_falsy_tokens_disable(self, monkeypatch, token):
        monkeypatch.setenv(LEDGER_ENV, token)
        assert not default_ledger().enabled

    def test_any_other_value_is_a_path(self, monkeypatch, tmp_path):
        target = tmp_path / "runs.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        ledger = default_ledger()
        assert ledger.enabled
        assert ledger.path == target

    def test_blank_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "  ")
        assert default_ledger().path == DEFAULT_PATH


class TestLedger:
    def test_record_and_read_back(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        entry = ledger.record("sweep", n_points=4, skipped=None)
        assert entry["kind"] == "sweep"
        assert entry["n_points"] == 4
        assert "skipped" not in entry  # None fields drop, not null
        assert "ts" in entry and "fingerprint" in entry
        (read,) = ledger.entries()
        assert read["n_points"] == 4
        assert len(ledger) == 1

    def test_entries_filter_by_kind(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.record("sweep")
        ledger.record("bench")
        ledger.record("sweep")
        assert [e["kind"] for e in ledger.entries(kind="sweep")] == [
            "sweep", "sweep",
        ]
        assert len(ledger.entries()) == 3

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = Ledger(path)
        ledger.record("sweep")
        with path.open("a") as handle:
            handle.write('{"kind": "sw\n\n[1, 2]\n')
        ledger.record("fit")
        kinds = [e["kind"] for e in ledger.entries()]
        assert kinds == ["sweep", "fit"]

    def test_disabled_ledger_is_a_noop(self):
        ledger = Ledger(None)
        assert not ledger.enabled
        assert ledger.append({"kind": "x"}) is False
        assert ledger.entries() == []
        # record still returns the entry so callers can echo it.
        assert ledger.record("sweep")["kind"] == "sweep"

    def test_append_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        ledger = Ledger(blocker / "sub" / "l.jsonl")
        assert ledger.append({"kind": "x"}) is False

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "never-written.jsonl").entries() == []

    def test_record_run_honours_the_environment(self, monkeypatch, tmp_path):
        target = tmp_path / "runs.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        record_run("fit", model="signature")
        (entry,) = Ledger(target).entries()
        assert entry["kind"] == "fit"
        assert entry["model"] == "signature"


class TestFingerprint:
    def test_carries_the_environment(self):
        fp = environment_fingerprint()
        assert fp["python"].count(".") == 2
        assert fp["numpy"]
        assert fp["cpu_count"] >= 1
        assert "platform" in fp


class TestCliThreading:
    def _ledger(self, monkeypatch, tmp_path):
        target = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        return Ledger(target)

    def test_sweep_appends_one_fingerprinted_entry(
        self, monkeypatch, tmp_path
    ):
        ledger = self._ledger(monkeypatch, tmp_path)
        assert main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache",
        ]) == 0
        (entry,) = ledger.entries()
        assert entry["kind"] == "sweep"
        assert entry["exit_code"] == 0
        assert entry["n_points"] == 1
        assert entry["wall_s"] > 0
        assert entry["fingerprint"]["cpu_count"] >= 1
        # The metrics delta of the invocation rides along.
        assert entry["metrics"]["sim.runs"]["values"]["engine=fluid"] == 1.0

    def test_failing_command_records_its_exit_code(
        self, monkeypatch, tmp_path
    ):
        ledger = self._ledger(monkeypatch, tmp_path)
        assert main(["characterize", "no-such-cluster"]) == 2
        (entry,) = ledger.entries()
        assert entry["kind"] == "characterize"
        assert entry["exit_code"] == 2

    def test_unledgered_commands_stay_out(self, monkeypatch, tmp_path):
        ledger = self._ledger(monkeypatch, tmp_path)
        assert main(["list", "engines"]) == 0
        assert main(["predict", "gigabit-ethernet", "8", "32kB"]) == 0
        assert ledger.entries() == []

    def test_scenario_runs_record_the_cache_key(
        self, monkeypatch, tmp_path
    ):
        ledger = self._ledger(monkeypatch, tmp_path)
        scenario = tmp_path / "s.toml"
        scenario.write_text(
            "\n".join([
                '[scenario]',
                'name = "ledger-smoke"',
                'base = "myrinet"',
                '[scenario.workload]',
                'nprocs = [4]',
                'sizes = [2048, 8192, 32768, 131072]',
                'reps = 1',
            ]) + "\n"
        )
        assert main(["run", "--scenario", str(scenario)]) == 0
        (entry,) = ledger.entries(kind="run")
        assert entry["scenario"] == str(scenario)
        assert len(entry["scenario_key"]) == 16

    def test_disabled_ledger_keeps_commands_working(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv(LEDGER_ENV, "off")
        assert main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--no-cache",
        ]) == 0
        assert "simulated : 1" in capsys.readouterr().out
