"""Unit tests for the Hockney transmission model."""

import numpy as np
import pytest

from repro.core.hockney import HockneyParams, fit_hockney
from repro.exceptions import FittingError


class TestParams:
    def test_p2p_time_scalar(self):
        params = HockneyParams(alpha=1e-4, beta=1e-8)
        assert params.p2p_time(1_000_000) == pytest.approx(0.0101)

    def test_p2p_time_vectorised(self):
        params = HockneyParams(alpha=0.0, beta=1e-6)
        times = params.p2p_time(np.array([1, 2, 4]))
        assert times == pytest.approx([1e-6, 2e-6, 4e-6])

    def test_bandwidth_inverse_of_beta(self):
        params = HockneyParams(alpha=0.0, beta=1e-8)
        assert params.bandwidth == pytest.approx(1e8)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            HockneyParams(alpha=-1e-6, beta=1e-8)

    def test_non_positive_beta_rejected(self):
        with pytest.raises(ValueError):
            HockneyParams(alpha=0.0, beta=0.0)

    def test_str_contains_bandwidth(self):
        text = str(HockneyParams(alpha=50e-6, beta=1e-8))
        assert "100.0 MB/s" in text


class TestFit:
    def test_recovers_synthetic_parameters(self):
        sizes = np.array([1e3, 1e4, 1e5, 1e6])
        times = 5e-5 + sizes * 2e-9
        fit = fit_hockney(sizes, times)
        assert fit.params.alpha == pytest.approx(5e-5, rel=1e-6)
        assert fit.params.beta == pytest.approx(2e-9, rel=1e-6)

    def test_negative_intercept_clamped(self):
        sizes = np.array([1e5, 2e5, 4e5, 8e5])
        times = -1e-4 + sizes * 1e-8  # nonsense negative start-up
        fit = fit_hockney(sizes, times)
        assert fit.params.alpha == 0.0

    def test_non_positive_slope_rejected(self):
        sizes = np.array([1e3, 1e4, 1e5])
        times = np.array([3.0, 2.0, 1.0])
        with pytest.raises(FittingError, match="beta"):
            fit_hockney(sizes, times)

    def test_too_few_samples_rejected(self):
        with pytest.raises(FittingError):
            fit_hockney([1.0], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(FittingError):
            fit_hockney([1.0, 2.0], [1.0])
