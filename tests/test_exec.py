"""Unit tests for the execution subsystem (repro.exec)."""

import csv
import json

import pytest

from repro.exceptions import ExecutionError, MeasurementError, UnknownNameError
from repro.exec import (
    ROW_FIELDS,
    CallbackSink,
    CsvSink,
    ExecutionTask,
    FuturesExecutor,
    JsonlSink,
    ProcessExecutor,
    ResultSink,
    SerialExecutor,
    get_executor,
    run_task,
    sink_for,
)
from repro.registry import CLUSTERS, EXECUTORS, register_cluster, register_executor
from repro.sweeps import (
    ResultCache,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    configure_default_runner,
)


def good_point(n=4, m=2_048, seed=0):
    return SweepPoint("gigabit-ethernet", n, m, "direct", seed, 1)


def bad_point():
    """A point whose simulation raises (hotspot targets exceed n)."""
    return SweepPoint(
        "gigabit-ethernet", 4, 2_048, "direct", 0, 1,
        pattern={"name": "hotspot", "params": {"targets": 100, "factor": 8.0}},
    )


class TestExecutorRegistry:
    def test_builtins_registered(self):
        names = EXECUTORS.names()
        assert {"serial", "process", "futures"} <= set(names)

    def test_aliases_resolve(self):
        assert isinstance(get_executor("pool", 2), ProcessExecutor)
        assert isinstance(get_executor("inline"), SerialExecutor)
        assert isinstance(get_executor("concurrent-futures", 2), FuturesExecutor)

    def test_unknown_executor_lists_known(self):
        with pytest.raises(UnknownNameError, match="serial"):
            get_executor("carrier-pigeon")

    def test_runner_rejects_unknown_executor_at_construction(self):
        with pytest.raises(UnknownNameError, match="unknown executor"):
            SweepRunner(executor="carrier-pigeon")

    def test_user_registered_executor_is_used(self):
        calls = []

        class RecordingExecutor(SerialExecutor):
            name = "test-recording"
            distributed = True

            def run(self, tasks):
                calls.append(len(tasks))
                yield from super().run(tasks)

        register_executor("test-recording")(lambda workers=1: RecordingExecutor())
        try:
            runner = SweepRunner(workers=2, executor="test-recording")
            result = runner.run_points([good_point(4), good_point(5)])
            assert result.n_simulated == 2
            assert calls == [2]
        finally:
            EXECUTORS.unregister("test-recording")


class TestRunTask:
    def test_success(self):
        outcome = run_task(ExecutionTask(7, good_point()))
        assert outcome.ok
        assert outcome.index == 7
        assert outcome.sample.mean_time > 0

    def test_failure_is_isolated(self):
        outcome = run_task(ExecutionTask(0, bad_point()))
        assert not outcome.ok
        assert outcome.sample is None
        assert outcome.error_type == "MeasurementError"
        assert "hotspot" in outcome.error
        assert "MeasurementError" in outcome.traceback

    def test_unknown_cluster_is_isolated(self):
        point = good_point()
        object.__setattr__(point, "cluster", "no-such-cluster")
        outcome = run_task(ExecutionTask(0, point))
        assert not outcome.ok
        assert outcome.error_type == "UnknownNameError"

    def test_portable(self):
        from repro.clusters import gigabit_ethernet

        assert ExecutionTask(0, good_point()).portable
        assert not ExecutionTask(0, good_point(), profile=gigabit_ethernet()).portable


class TestExecutorsAgree:
    TASKS = None  # built lazily; SweepPoint validation needs registries

    def _tasks(self):
        points = [good_point(n, m) for n in (4, 5) for m in (2_048, 8_192)]
        return [ExecutionTask(i, p) for i, p in enumerate(points)]

    def _times(self, outcomes):
        by_index = {o.index: o for o in outcomes}
        assert all(o.ok for o in by_index.values())
        return [by_index[i].sample.mean_time for i in sorted(by_index)]

    def test_process_and_futures_match_serial(self):
        tasks = self._tasks()
        serial = self._times(SerialExecutor().run(tasks))
        with ProcessExecutor(2) as pool:
            assert self._times(pool.run(tasks)) == serial
        with FuturesExecutor(2) as pool:
            assert self._times(pool.run(tasks)) == serial


class TestProcessExecutorPersistence:
    def test_pool_is_reused_across_runs(self):
        with ProcessExecutor(2) as executor:
            assert not executor.warm
            list(executor.run(self._tasks()))
            first_pool = executor._pool
            assert executor.warm
            list(executor.run(self._tasks()))
            assert executor._pool is first_pool
        assert not executor.warm  # context exit closed it

    def test_pool_recycled_when_registries_change(self):
        with ProcessExecutor(2) as executor:
            list(executor.run(self._tasks()))
            first_pool = executor._pool

            @register_cluster("test-epoch-bump")
            def factory():  # pragma: no cover - never built
                raise AssertionError

            try:
                list(executor.run(self._tasks()))
                assert executor._pool is not first_pool
            finally:
                CLUSTERS.unregister("test-epoch-bump")

    def test_close_is_idempotent(self):
        executor = ProcessExecutor(2)
        executor.close()
        executor.close()

    def test_chunksize_batches(self):
        assert ProcessExecutor.chunksize(64, 4) == 4
        assert ProcessExecutor.chunksize(3, 8) == 1

    @staticmethod
    def _tasks():
        return [ExecutionTask(i, good_point(4, m)) for i, m in enumerate((2_048, 8_192))]


class TestSinks:
    ROW = {field: "" for field in ROW_FIELDS}

    def test_csv_rows_land_incrementally(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        sink = CsvSink(path)
        sink.open(ROW_FIELDS)
        sink.write({**self.ROW, "cluster": "a", "mean_time": 1.5})
        # Visible on disk before close: the sink flushes per row.
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1 and rows[0]["cluster"] == "a"
        sink.write({**self.ROW, "cluster": "b", "mean_time": None})
        sink.close()
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [r["cluster"] for r in rows] == ["a", "b"]
        assert rows[1]["mean_time"] == ""  # failed points: empty cells

    def test_jsonl_rows_land_incrementally(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        sink = JsonlSink(path)
        sink.open(ROW_FIELDS)
        sink.write({"cluster": "a", "mean_time": None})
        assert json.loads(path.read_text())["mean_time"] is None
        sink.close()

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.open(ROW_FIELDS)
        sink.write({"cluster": "x"})
        sink.close()
        assert seen == [{"cluster": "x"}]

    def test_sink_for_extension_dispatch(self, tmp_path):
        assert isinstance(sink_for(tmp_path / "a.csv"), CsvSink)
        assert isinstance(sink_for(tmp_path / "a.jsonl"), JsonlSink)
        assert isinstance(sink_for(tmp_path / "a.ndjson"), JsonlSink)
        with pytest.raises(ValueError, match="csv or .jsonl"):
            sink_for(tmp_path / "a.parquet")


class TestFailureIsolation:
    def test_keep_records_error_without_losing_points(self):
        runner = SweepRunner(on_error="keep")
        result = runner.run_points([good_point(4), bad_point(), good_point(5)])
        assert result.n_points == 3
        assert result.n_simulated == 2
        assert result.n_failed == 1
        failure = result.failures[0]
        assert failure.error_type == "MeasurementError"
        assert failure.sample is None
        _, rows = result.to_rows()
        assert rows[1]["error"] and rows[1]["mean_time"] is None
        assert rows[0]["error"] == "" and rows[0]["mean_time"] > 0

    def test_raise_rehydrates_original_type_after_batch(self, tmp_path):
        sink = JsonlSink(tmp_path / "rows.jsonl")
        runner = SweepRunner()  # on_error="raise" default
        with pytest.raises(MeasurementError, match="hotspot"):
            runner.run_points([good_point(4), bad_point(), good_point(5)], sinks=(sink,))
        # The failure did not lose the completed points: every row —
        # including the error row — was streamed before the raise.
        rows = [json.loads(line) for line in (tmp_path / "rows.jsonl").read_text().splitlines()]
        assert len(rows) == 3
        assert sum(1 for r in rows if r["error"]) == 1

    def test_parallel_workers_isolate_failures(self):
        with SweepRunner(workers=2, on_error="keep") as runner:
            points = [good_point(4), bad_point(), good_point(5), good_point(6)]
            result = runner.run_points(points)
            assert result.n_failed == 1
            assert result.n_simulated == 3
            # Failed point is identifiable by position, not just count.
            assert not result.results[1].ok

    def test_multiarg_builtin_error_falls_back_to_execution_error(self):
        # UnicodeDecodeError's constructor needs five arguments; the
        # re-raise path must not blow up with a TypeError masking it.
        @register_cluster("test-multiarg-error")
        def factory():
            raise UnicodeDecodeError("utf-8", b"x", 0, 1, "boom")

        try:
            with pytest.raises(ExecutionError, match="UnicodeDecodeError.*boom"):
                SweepRunner().run_points(
                    [SweepPoint("test-multiarg-error", 4, 2_048, "direct", 0, 1)]
                )
        finally:
            CLUSTERS.unregister("test-multiarg-error")

    def test_failed_sink_open_closes_earlier_sinks(self, tmp_path):
        class ExplodingSink(ResultSink):
            def open(self, fieldnames):
                raise PermissionError("sink target unwritable")

        closed = []

        class TrackingSink(JsonlSink):
            def close(self):
                closed.append(True)
                super().close()

        with pytest.raises(PermissionError):
            SweepRunner().run_points(
                [good_point()],
                sinks=(TrackingSink(tmp_path / "a.jsonl"), ExplodingSink()),
            )
        assert closed == [True]  # the successfully-opened sink was released

    def test_unrehydratable_error_becomes_execution_error(self):
        class WeirdError(Exception):
            pass

        @register_cluster("test-weird-failure")
        def factory():
            raise WeirdError("no such exception type in repro.exceptions")

        try:
            with pytest.raises(ExecutionError, match="no such exception"):
                SweepRunner().run_points(
                    [SweepPoint("test-weird-failure", 4, 2_048, "direct", 0, 1)]
                )
        finally:
            CLUSTERS.unregister("test-weird-failure")


class TestRetryPolicy:
    def test_transient_failure_retried(self):
        state = {"failures_left": 1}

        @register_cluster("test-flaky")
        def factory():
            from repro.clusters import gigabit_ethernet

            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                raise RuntimeError("transient worker failure")
            return gigabit_ethernet().with_overrides(name="test-flaky")

        try:
            point = SweepPoint("test-flaky", 4, 2_048, "direct", 0, 1)
            result = SweepRunner(retries=1).run_points([point])
            assert result.results[0].ok
            assert result.results[0].attempts == 2
        finally:
            CLUSTERS.unregister("test-flaky")

    def test_exhausted_retries_keep_error(self):
        runner = SweepRunner(retries=2, on_error="keep")
        result = runner.run_points([bad_point()])
        assert result.n_failed == 1
        assert result.results[0].attempts == 3  # 1 try + 2 retries

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(retries=-1)

    def test_rejects_bad_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepRunner(on_error="ignore")


class TestRunnerStreaming:
    def test_cache_hits_stream_before_fresh_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = [good_point(4), good_point(5)]
        SweepRunner(cache=cache).run_points(points)

        order = []
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        runner.run_points(
            points + [good_point(6)],
            progress=lambda done, total, r: order.append((done, total, r.cached)),
        )
        assert order == [(1, 3, True), (2, 3, True), (3, 3, False)]

    def test_progress_counts_every_point(self):
        seen = []
        with SweepRunner(workers=2) as runner:
            runner.run_points(
                [good_point(n, m) for n in (4, 5) for m in (2_048, 8_192)],
                progress=lambda done, total, r: seen.append((done, total)),
            )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_sinks_receive_all_rows_parallel(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with SweepRunner(workers=2) as runner:
            runner.run_points(
                [good_point(n, m) for n in (4, 5) for m in (2_048, 8_192)],
                sinks=(JsonlSink(path),),
            )
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 4
        assert {(r["n_processes"], r["msg_size"]) for r in rows} == {
            (n, m) for n in (4, 5) for m in (2_048, 8_192)
        }

    def test_sink_files_byte_identical_across_worker_counts(self, tmp_path):
        # Regression: imap_unordered completions must be re-sequenced —
        # a streamed CSV written in completion order differed between
        # worker counts, breaking the repo's determinism invariant.
        points = [good_point(n, m) for n in (4, 5, 6) for m in (2_048, 8_192)]
        paths = []
        for name, kwargs in (
            ("serial.csv", dict(workers=1, executor="serial")),
            ("process.csv", dict(workers=3, executor="process")),
            ("futures.csv", dict(workers=3, executor="futures")),
        ):
            path = tmp_path / name
            with SweepRunner(**kwargs) as runner:
                runner.run_points(points, sinks=(CsvSink(path),))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1] == paths[2]


class TestRunPointsValidation:
    def test_unknown_cluster_fails_fast_with_known_names(self):
        point = SweepPoint("no-such-cluster", 4, 2_048, "direct", 0, 1)
        with pytest.raises(KeyError, match="unknown clusters.*known:"):
            SweepRunner().run_points([point])

    def test_profile_and_scenario_points_skip_registry_check(self):
        # Scenario labels are not registry names; they must still run.
        from repro.clusters import gigabit_ethernet

        profile = gigabit_ethernet().with_overrides(name="ad-hoc-label")
        point = SweepPoint("ad-hoc-label", 4, 2_048, "direct", 0, 1)
        result = SweepRunner().run_points([point], profile=profile)
        assert result.n_simulated == 1


class TestEnvConfiguration:
    def teardown_method(self):
        # Rebuild a clean default for later tests regardless of outcome.
        configure_default_runner()

    def test_executor_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTOR", "futures")
        runner = configure_default_runner()
        assert runner.executor_name == "futures"

    def test_malformed_workers_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS.*'many'"):
            configure_default_runner()

    def test_nonpositive_workers_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            configure_default_runner()

    def test_unknown_executor_env_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTOR", "carrier-pigeon")
        with pytest.raises(UnknownNameError, match="REPRO_SWEEP_EXECUTOR.*known:"):
            configure_default_runner()

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTOR", "carrier-pigeon")
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "junk")
        runner = configure_default_runner(workers=2, executor="serial")
        assert runner.workers == 2
        assert runner.executor_name == "serial"


class TestBitIdenticalAcrossExecutors:
    SPEC = dict(
        clusters=("gigabit-ethernet",),
        nprocs=(4, 5),
        sizes=(2_048, 8_192),
        algorithms=("direct",),
        patterns=(None, {"name": "hotspot", "params": {"targets": 2, "factor": 4.0}}),
        seeds=(0,),
        reps=1,
    )

    def _run(self, tmp_path, name, **runner_kwargs):
        cache = ResultCache(tmp_path / name)
        with SweepRunner(cache=cache, **runner_kwargs) as runner:
            result = runner.run(SweepSpec(**self.SPEC))
        keys = sorted(p.name for p in (tmp_path / name).glob("*/*.json"))
        return result.to_rows()[1], keys

    def test_rows_and_cache_keys_identical(self, tmp_path):
        serial_rows, serial_keys = self._run(tmp_path, "serial", workers=1, executor="serial")
        process_rows, process_keys = self._run(
            tmp_path, "process", workers=2, executor="process"
        )
        futures_rows, futures_keys = self._run(
            tmp_path, "futures", workers=2, executor="futures"
        )
        assert serial_rows == process_rows == futures_rows
        assert serial_keys == process_keys == futures_keys
