"""Unit tests for measurement backends."""

import numpy as np
import pytest

from repro.exceptions import BackendUnavailableError
from repro.measure.backends import Mpi4pyBackend, SimBackend, get_backend


class TestSimBackend:
    def test_pingpong_times_shape(self, gige_cluster):
        backend = SimBackend(gige_cluster)
        times = backend.pingpong_times([1, 65_536], reps=1, seed=0)
        assert times.shape == (2,)
        assert np.all(times > 0)

    def test_alltoall_time_positive(self, gige_cluster):
        backend = SimBackend(gige_cluster)
        assert backend.alltoall_time(4, 65_536, reps=1, seed=0) > 0

    def test_name_includes_cluster(self, gige_cluster):
        assert "gigabit-ethernet" in SimBackend(gige_cluster).name


class _FakeMpi:
    """Just enough MPI surface for rank-0 pingpong bookkeeping."""

    BYTE = object()


class _FakeComm:
    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 2

    def Barrier(self) -> None:
        pass

    def Send(self, buf, dest, tag) -> None:
        pass

    def Recv(self, buf, source, tag) -> None:
        pass

    def bcast(self, value, root=0):
        return value


class TestMpi4pyProbes:
    def _backend(self) -> Mpi4pyBackend:
        backend = Mpi4pyBackend.__new__(Mpi4pyBackend)
        backend._mpi = _FakeMpi()
        backend.comm = _FakeComm()
        return backend

    def test_pingpong_times_accepts_generator(self):
        # Regression: sizes used to be consumed twice (len(list(sizes))
        # then enumerate(sizes)) — a generator argument sized the output
        # array and then yielded zero measurements.
        backend = self._backend()
        times = backend.pingpong_times(int(s) for s in (16, 64, 256))
        assert times.shape == (3,)
        assert np.all(times >= 0)

    def test_pingpong_times_matches_list_argument(self):
        backend = self._backend()
        from_list = backend.pingpong_times([16, 64], reps=1)
        from_gen = backend.pingpong_times(iter([16, 64]), reps=1)
        assert from_list.shape == from_gen.shape == (2,)


class TestFactory:
    def test_sim_requires_cluster(self):
        with pytest.raises(ValueError, match="cluster"):
            get_backend("sim")

    def test_sim_backend_constructed(self, gige_cluster):
        backend = get_backend("sim", gige_cluster)
        assert isinstance(backend, SimBackend)

    def test_unknown_backend_rejected(self, gige_cluster):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("carrier-pigeon", gige_cluster)

    def test_mpi4py_unavailable_offline(self):
        # mpi4py is not installed in this environment: the backend must
        # fail with the documented exception, not an ImportError.
        try:
            import mpi4py  # noqa: F401

            pytest.skip("mpi4py installed; live backend available")
        except ImportError:
            pass
        with pytest.raises(BackendUnavailableError, match="mpi4py"):
            Mpi4pyBackend()
