"""Additional runtime semantics: request lifecycle and program shapes."""

import math

import pytest

from repro.simmpi.request import ANY_SOURCE, RecvRequest, Request, SendRequest
from repro.simmpi.runtime import Runtime
from repro.simmpi.transport import TransportParams
from repro.simnet.topology import single_switch


class TestRequestObjects:
    def test_complete_fires_callbacks_once(self):
        req = Request(0)
        fired = []
        req.on_done(lambda: fired.append(1))
        req.complete(1.5)
        assert fired == [1]
        assert req.done
        assert req.completion_time == 1.5

    def test_double_complete_rejected(self):
        req = Request(0)
        req.complete(1.0)
        with pytest.raises(RuntimeError, match="twice"):
            req.complete(2.0)

    def test_on_done_after_completion_fires_immediately(self):
        req = Request(0)
        req.complete(1.0)
        fired = []
        req.on_done(lambda: fired.append(1))
        assert fired == [1]

    def test_send_request_fields(self):
        req = SendRequest(rank=2, dst=5, tag=7, nbytes=100)
        assert (req.rank, req.dst, req.tag, req.nbytes) == (2, 5, 7, 100)
        assert math.isnan(req.completion_time)

    def test_recv_matching_rules(self):
        req = RecvRequest(rank=0, source=3, tag=9)
        assert req.matches(3, 9)
        assert not req.matches(2, 9)
        assert not req.matches(3, 8)
        wild = RecvRequest(rank=0, source=ANY_SOURCE, tag=9)
        assert wild.matches(7, 9)


class TestTransportParams:
    def test_segments_ceiling(self):
        params = TransportParams(mss=1000)
        assert params.segments(1) == 1
        assert params.segments(1000) == 1
        assert params.segments(1001) == 2
        assert params.segments(0) == 1

    def test_wire_bytes_includes_envelope_and_framing(self):
        params = TransportParams(
            mss=1000, envelope_bytes=50, per_segment_wire_bytes=10
        )
        assert params.wire_bytes(2500) == 2500 + 50 + 3 * 10

    def test_eager_boundary(self):
        params = TransportParams(eager_threshold=100)
        assert params.is_eager(99)
        assert not params.is_eager(100)

    def test_local_copy_time(self):
        params = TransportParams(local_copy_bandwidth=1e9)
        assert params.local_copy_time(1e9) == pytest.approx(1.0)

    def test_mux_applies_logic(self):
        params = TransportParams(mux_overhead=1e-3, mux_threshold=1000)
        assert params.mux_applies(2000, 2)
        assert not params.mux_applies(500, 2)  # below size threshold
        assert not params.mux_applies(2000, 1)  # single stream
        quiet = TransportParams(mux_overhead=0.0)
        assert not quiet.mux_applies(10**6, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportParams(mss=0)
        with pytest.raises(ValueError):
            TransportParams(base_latency=-1.0)
        with pytest.raises(ValueError):
            TransportParams(sender_concurrency=0)


class TestManyToOnePatterns:
    """Gather/scatter-shaped programs exercise matching under fan-in."""

    @staticmethod
    def build(n=5):
        topo = single_switch(n, nic_bandwidth=100e6)
        params = TransportParams(
            base_latency=1e-6, eager_threshold=65_536, envelope_bytes=0,
            mss=10**9, per_segment_wire_bytes=0, jitter_scale=0.0,
            per_message_send_overhead=0.0, ctrl_overhead=0.0,
        )
        return Runtime(topo, params, nprocs=n, seed=0)

    def test_gather_with_wildcards(self):
        n = 5

        def prog(ctx):
            if ctx.rank == 0:
                reqs = [ctx.irecv(ANY_SOURCE, tag=1) for _ in range(n - 1)]
                yield reqs
                assert sorted(r.source for r in reqs) == list(range(1, n))
            else:
                yield ctx.isend(0, 1000 * ctx.rank, tag=1)

        self.build(n).run(prog)

    def test_scatter_then_reduce_roundtrip(self):
        n = 5

        def prog(ctx):
            if ctx.rank == 0:
                sends = [ctx.isend(dst, 4096, tag=2) for dst in range(1, n)]
                yield sends
                acks = [ctx.irecv(src, tag=3) for src in range(1, n)]
                yield acks
            else:
                req = ctx.irecv(0, tag=2)
                yield req
                assert req.nbytes == 4096
                yield ctx.isend(0, 8, tag=3)

        result = self.build(n).run(prog)
        assert result.duration > 0

    def test_ring_shift_pattern(self):
        n = 5

        def prog(ctx):
            right = (ctx.rank + 1) % n
            left = (ctx.rank - 1) % n
            for step in range(3):
                send = ctx.isend(right, 2048, tag=10 + step)
                recv = ctx.irecv(left, tag=10 + step)
                yield [send, recv]

        result = self.build(n).run(prog)
        assert result.flows_completed == 3 * n
