"""Observability: the live sweep heartbeat sink.

Covers the pure beat formatting (including the all-cache-hit and
zero-elapsed guards), the interval/clock behaviour with an injected
clock, sink composition inside a real sweep, and the CLI flag.
"""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.obs.heartbeat import HeartbeatSink, _format_beat
from repro.obs.metrics import REGISTRY
from repro.sweeps.cache import ResultCache
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepPoint


@pytest.fixture(autouse=True)
def _fresh_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def _points(sizes=(2048, 8192)):
    return [
        SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=size,
            algorithm="direct", seed=0, reps=1,
        )
        for size in sizes
    ]


class TestFormatBeat:
    def test_known_total_shows_fraction_rate_and_eta(self):
        line = _format_beat(5, 10, 1, 2.0, {})
        assert "5/10 rows (50%)" in line
        assert "2.5 rows/s" in line
        assert "hit 20%" in line
        assert "ETA 2s" in line

    def test_unknown_total_has_no_eta(self):
        line = _format_beat(5, None, 0, 2.0, {})
        assert "5 rows" in line
        assert "ETA" not in line

    def test_all_cache_hit_reports_cleanly(self):
        # The degenerate sweep: everything cached, zero measurable time.
        line = _format_beat(4, 4, 4, 0.0, {})
        assert "hit 100%" in line
        assert "rows/s" not in line  # no division by zero elapsed
        assert "ETA" not in line     # done == total

    def test_zero_rows_never_divides(self):
        line = _format_beat(0, 10, 0, 0.0, {})
        assert "0/10 rows (0%)" in line
        assert "hit" not in line

    def test_top_deltas_are_ranked_and_capped(self):
        line = _format_beat(
            1, None, 0, 1.0,
            {"a": 1.0, "b": 9.0, "c": 5.0, "d": 2.0},
        )
        assert "b +9 c +5 d +2" in line
        assert "a +1" not in line  # TOP_DELTAS == 3


class TestHeartbeatSink:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatSink(0)
        with pytest.raises(ValueError, match="interval"):
            HeartbeatSink(-1)

    def _ticking(self, interval, step):
        """A sink whose clock advances *step* seconds per inspection."""
        ticks = iter(i * step for i in range(1000))
        stream = io.StringIO()
        sink = HeartbeatSink(
            interval, stream=stream, clock=lambda: next(ticks)
        )
        return sink, stream

    def test_beats_only_after_the_interval(self):
        sink, stream = self._ticking(interval=10.0, step=1.0)
        sink.open(["cluster"])
        for _ in range(5):
            sink.write({"cached": 0})
        assert stream.getvalue() == ""  # 5 s elapsed < 10 s interval

    def test_beats_when_the_interval_passes(self):
        sink, stream = self._ticking(interval=2.0, step=1.0)
        sink.open(["cluster"])
        for _ in range(4):
            sink.write({"cached": 0})
        assert stream.getvalue().count("[heartbeat]") >= 1

    def test_close_emits_a_final_summary(self):
        sink, stream = self._ticking(interval=100.0, step=1.0)
        sink.open(["cluster"])
        sink.write({"cached": 1})
        sink.write({"cached": 1})
        sink.close()
        (line,) = stream.getvalue().splitlines()
        assert "2 rows" in line
        assert "hit 100%" in line

    def test_empty_sweep_stays_silent(self):
        sink, stream = self._ticking(interval=1.0, step=1.0)
        sink.open(["cluster"])
        sink.close()
        assert stream.getvalue() == ""

    def test_beat_reports_metric_deltas(self):
        sink, stream = self._ticking(interval=1.0, step=1.0)
        sink.open(["cluster"])
        REGISTRY.counter("sim.runs").inc(3, engine="fluid")
        sink.write({"cached": 0})
        sink.close()
        assert "sim.runs +3" in stream.getvalue()

    def test_composes_with_a_real_sweep(self, tmp_path):
        stream = io.StringIO()
        sink = HeartbeatSink(0.0001, stream=stream)
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run_points(_points(), sinks=(sink,))
        out = stream.getvalue()
        assert "[heartbeat]" in out
        assert "hit 0%" in out
        # Warm pass: every point cached, reported without dividing by
        # a zero simulation count.
        stream2 = io.StringIO()
        sink2 = HeartbeatSink(0.0001, stream=stream2)
        SweepRunner(cache=cache).run_points(_points(), sinks=(sink2,))
        assert "hit 100%" in stream2.getvalue()


class TestCliFlag:
    def _argv(self, tmp_path, *extra):
        return [
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB,8kB", "--cache-dir", str(tmp_path), *extra,
        ]

    def test_heartbeat_lands_on_stderr(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--heartbeat", "0.0001")) == 0
        captured = capsys.readouterr()
        assert "[heartbeat]" in captured.err
        assert "[heartbeat]" not in captured.out  # stdout stays clean
        assert "2/2 rows (100%)" in captured.err

    def test_flag_without_value_defaults_to_five_seconds(
        self, tmp_path, capsys
    ):
        # 5 s interval on a sub-second sweep: only the final close()
        # beat fires — and the sweep itself still succeeds.
        assert main(self._argv(tmp_path, "--heartbeat")) == 0
        assert capsys.readouterr().err.count("[heartbeat]") == 1

    def test_non_positive_interval_is_a_usage_error(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--heartbeat", "0")) == 2
        assert "--heartbeat" in capsys.readouterr().err
