"""Unit tests for the measurement harness (ping-pong, stress, alltoall)."""

import numpy as np
import pytest

from repro.core.signature import AlltoallSample
from repro.exceptions import MeasurementError
from repro.measure.alltoall import measure_alltoall, sweep_grid, sweep_sizes
from repro.measure.pingpong import (
    hockney_from_pingpong,
    measure_pingpong,
)
from repro.measure.stress import run_stress, stress_sweep


class TestPingPong:
    def test_times_increase_with_size(self, gige_cluster):
        result = measure_pingpong(
            gige_cluster, sizes=[1, 65_536, 1_048_576], reps=1, seed=0
        )
        assert np.all(np.diff(result.one_way_times) > 0)

    def test_reproducible(self, gige_cluster):
        a = measure_pingpong(gige_cluster, sizes=[1, 65_536], reps=2, seed=5)
        b = measure_pingpong(gige_cluster, sizes=[1, 65_536], reps=2, seed=5)
        assert np.array_equal(a.one_way_times, b.one_way_times)

    def test_hockney_fit_close_to_nic_bandwidth(self, gige_cluster):
        result = measure_pingpong(
            gige_cluster, sizes=[1, 65_536, 262_144, 1_048_576], reps=1, seed=0
        )
        fit = hockney_from_pingpong(result)
        # NIC is 117.6 MB/s; wire framing makes the effective beta a bit
        # larger (lower bandwidth).
        assert 90e6 < fit.params.bandwidth < 120e6
        assert 0 <= fit.params.alpha < 1e-3

    def test_needs_two_sizes(self, gige_cluster):
        with pytest.raises(MeasurementError):
            measure_pingpong(gige_cluster, sizes=[1024], reps=1)

    def test_rejects_zero_reps(self, gige_cluster):
        with pytest.raises(MeasurementError):
            measure_pingpong(gige_cluster, sizes=[1, 2048], reps=0)


class TestStress:
    def test_single_connection_near_line_rate(self, gige_cluster):
        run = run_stress(gige_cluster, 1, 8 * 1024 * 1024, seed=0)
        assert run.mean_throughput > 80e6

    def test_throughput_decays_with_connections(self, gige_cluster):
        few = run_stress(gige_cluster, 2, 8 * 1024 * 1024, seed=0)
        many = run_stress(gige_cluster, 30, 8 * 1024 * 1024, seed=0)
        assert many.mean_throughput < few.mean_throughput

    def test_sweep_shapes(self, gige_cluster):
        sweep = stress_sweep(
            gige_cluster, [1, 4], 4 * 1024 * 1024, reps=2, seed=1
        )
        ks, bw = sweep.mean_throughput_curve()
        assert ks.tolist() == [1.0, 4.0]
        xs, ys = sweep.scatter_times()
        assert len(xs) == len(ys) == 2 * (1 + 4)
        assert sweep.saturated_times().shape == (8,)

    def test_too_many_pairs_rejected(self, myrinet_cluster):
        with pytest.raises(MeasurementError, match="hosts"):
            run_stress(myrinet_cluster, 60, 1024, seed=0)

    def test_invalid_inputs(self, gige_cluster):
        with pytest.raises(MeasurementError):
            run_stress(gige_cluster, 0, 1024)
        with pytest.raises(MeasurementError):
            run_stress(gige_cluster, 1, 0)
        with pytest.raises(MeasurementError):
            stress_sweep(gige_cluster, [], 1024)


class TestAlltoallMeasure:
    def test_sample_fields(self, gige_cluster):
        sample = measure_alltoall(gige_cluster, 4, 65_536, reps=2, seed=0)
        assert isinstance(sample, AlltoallSample)
        assert sample.n_processes == 4
        assert sample.reps == 2
        assert sample.mean_time > 0

    def test_reproducible(self, gige_cluster):
        a = measure_alltoall(gige_cluster, 4, 65_536, reps=2, seed=9)
        b = measure_alltoall(gige_cluster, 4, 65_536, reps=2, seed=9)
        assert a.mean_time == b.mean_time

    def test_time_grows_with_message_size(self, gige_cluster):
        samples = sweep_sizes(
            gige_cluster, 4, [65_536, 1_048_576], reps=1, seed=0
        )
        assert samples[1].mean_time > samples[0].mean_time

    def test_time_grows_with_nprocs(self, gige_cluster):
        small = measure_alltoall(gige_cluster, 4, 262_144, reps=1, seed=0)
        large = measure_alltoall(gige_cluster, 12, 262_144, reps=1, seed=0)
        assert large.mean_time > small.mean_time

    def test_grid_sweep_count(self, gige_cluster):
        samples = sweep_grid(
            gige_cluster, [4, 6], [1_024, 2_048], reps=1, seed=0
        )
        assert len(samples) == 4

    def test_unknown_algorithm_rejected(self, gige_cluster):
        with pytest.raises(MeasurementError, match="algorithm"):
            measure_alltoall(gige_cluster, 4, 1024, algorithm="nope")

    def test_invalid_params_rejected(self, gige_cluster):
        with pytest.raises(MeasurementError):
            measure_alltoall(gige_cluster, 1, 1024)
        with pytest.raises(MeasurementError):
            measure_alltoall(gige_cluster, 4, 0)
        with pytest.raises(MeasurementError):
            measure_alltoall(gige_cluster, 4, 1024, reps=0)

    def test_sweeps_keep_measurement_error_hierarchy(self, gige_cluster):
        # Engine routing must not change the measure layer's exception
        # contract (callers catch ReproError/MeasurementError).
        with pytest.raises(MeasurementError):
            sweep_sizes(gige_cluster, 1, [1024], reps=1)
        with pytest.raises(MeasurementError):
            sweep_grid(gige_cluster, [4], [0], reps=1)
