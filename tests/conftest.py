"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.clusters.profiles import (
    fast_ethernet,
    gigabit_ethernet,
    myrinet,
)
from repro.simnet.engine import Engine
from repro.simnet.topology import single_switch

# Keep property tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running simulation test (deselect with -m 'not slow')"
    )


@pytest.fixture(autouse=True)
def _ledger_off():
    """Keep CLI invocations from appending to the working-dir run ledger.

    Tests exercising the ledger re-point ``REPRO_LEDGER`` at a tmp path
    themselves; everything else must not litter ``.repro/`` or slow down
    on fingerprinting. Managed via ``os.environ`` directly rather than
    ``monkeypatch`` so this autouse fixture does not pull the shared
    ``monkeypatch`` instance ahead of per-class xunit teardown fixtures
    (which would reorder env restoration around ``teardown_method``).
    """
    before = os.environ.get("REPRO_LEDGER")
    os.environ["REPRO_LEDGER"] = "off"
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("REPRO_LEDGER", None)
        else:
            os.environ["REPRO_LEDGER"] = before


@pytest.fixture
def engine() -> Engine:
    """A fresh event engine."""
    return Engine()


@pytest.fixture
def small_topology():
    """Four hosts on one ideal switch, 100 MB/s NICs."""
    return single_switch(4, nic_bandwidth=100e6)


@pytest.fixture(scope="session")
def gige_cluster():
    """The Gigabit Ethernet profile (session-scoped: profiles are frozen)."""
    return gigabit_ethernet()


@pytest.fixture(scope="session")
def fe_cluster():
    """The Fast Ethernet profile."""
    return fast_ethernet()


@pytest.fixture(scope="session")
def myrinet_cluster():
    """The Myrinet profile."""
    return myrinet()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for test inputs."""
    return np.random.default_rng(12345)
