"""Direct unit tests for the TCP loss model (:mod:`repro.simnet.loss`).

Both engines consume :class:`LossModel` from their resolve loops; these
tests pin its array semantics down without a simulation in between.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simnet.entities import LinkKind
from repro.simnet.fairness import FlowPaths
from repro.simnet.loss import LossModel, LossParams

HOST_TX = LinkKind.HOST_TX
HOST_RX = LinkKind.HOST_RX
BACKPLANE = LinkKind.BACKPLANE


def _model(**kwargs) -> LossModel:
    """Three-link model (tx, backplane, rx) with small thresholds."""
    kwargs.setdefault("coeff_per_byte", 1e-6)
    kwargs.setdefault("sat_flows", {HOST_TX: 2, HOST_RX: 2, BACKPLANE: 4})
    params = LossParams(**kwargs)
    return LossModel(params, [HOST_TX, BACKPLANE, HOST_RX])


class TestParams:
    def test_enabled_iff_positive_coeff(self):
        assert not LossParams().enabled
        assert LossParams(coeff_per_byte=1e-9).enabled

    def test_rto_doubles_then_caps(self):
        params = LossParams(rto_min=0.2, rto_max=3.2)
        assert [params.rto(b) for b in range(6)] == [
            0.2, 0.4, 0.8, 1.6, 3.2, 3.2
        ]

    def test_rto_clamps_negative_backoff(self):
        assert LossParams().rto(-3) == LossParams().rto(0)

    def test_sat_flows_defaults_generous(self):
        # Kinds missing from the table effectively never overload.
        params = LossParams(sat_flows={HOST_TX: 2})
        assert params.sat_flows_for(BACKPLANE) == 1_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            LossParams(coeff_per_byte=-1.0)
        with pytest.raises(ValueError):
            LossParams(rto_min=0.0)
        with pytest.raises(ValueError):
            LossParams(chain_probability=1.0)


class TestOverloads:
    def test_requires_saturation_and_excess_flows(self):
        model = _model()
        counts = np.array([6, 6, 1])
        # Overloaded only where saturated AND flows exceed the threshold.
        over = model.overloads(counts, np.array([True, False, True]))
        assert over == pytest.approx([6 / 2 - 1, 0.0, 0.0])

    def test_unsaturated_links_never_overload(self):
        model = _model()
        over = model.overloads(np.array([100, 100, 100]), np.zeros(3, bool))
        assert not over.any()

    def test_within_buffering_clamps_to_zero(self):
        model = _model()
        # Saturated but fewer flows than the device buffers: no drops.
        over = model.overloads(np.array([1, 2, 1]), np.ones(3, bool))
        assert not over.any()


class TestFlowHazards:
    def test_empty_flow_set(self):
        model = _model()
        paths = FlowPaths.from_lists([])
        hazards = model.flow_hazards(
            paths.link_ids, paths.indptr, np.empty(0),
            np.zeros(3), np.zeros(3, bool),
        )
        assert hazards.shape == (0,)

    def test_disabled_params_zero_hazards(self):
        model = _model(coeff_per_byte=0.0)
        paths = FlowPaths.from_lists([(0, 1), (1, 2)])
        hazards = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([5.0, 5.0]),
            np.array([6, 6, 6]), np.ones(3, bool),
        )
        assert not hazards.any()

    def test_multi_link_worst_overload_segmented_max(self):
        model = _model()
        # Flow 0 crosses tx(0) + backplane(1); flow 1 only rx(2).
        paths = FlowPaths.from_lists([(0, 1), (2,)])
        counts = np.array([4, 12, 3])  # overloads: 1.0, 2.0, 0.5
        hazards = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([10.0, 20.0]),
            counts, np.ones(3, bool),
        )
        # Flow 0 takes the worst overload along its path (backplane 2.0).
        assert hazards[0] == pytest.approx(1e-6 * 10.0 * 2.0)
        assert hazards[1] == pytest.approx(1e-6 * 20.0 * 0.5)

    def test_hazard_scales_with_rate(self):
        model = _model()
        paths = FlowPaths.from_lists([(0,), (0,)])
        hazards = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([1.0, 3.0]),
            np.array([6, 0, 0]), np.array([True, False, False]),
        )
        assert hazards[1] == pytest.approx(3.0 * hazards[0])

    def test_backoff_factor_scaling(self):
        model = _model(backoff_hazard_factor=0.5)
        paths = FlowPaths.from_lists([(0,), (0,)])
        base = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([1.0, 1.0]),
            np.array([6, 0, 0]), np.array([True, False, False]),
        )
        scaled = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([1.0, 1.0]),
            np.array([6, 0, 0]), np.array([True, False, False]),
            backoffs=np.array([0.0, 4.0]),
        )
        assert scaled[0] == pytest.approx(base[0])
        assert scaled[1] == pytest.approx(base[1] * (1.0 + 0.5 * 4.0))

    def test_backoffs_ignored_when_factor_disabled(self):
        model = _model()  # backoff_hazard_factor = 0
        paths = FlowPaths.from_lists([(0,)])
        with_backoff = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([1.0]),
            np.array([6, 0, 0]), np.array([True, False, False]),
            backoffs=np.array([7.0]),
        )
        without = model.flow_hazards(
            paths.link_ids, paths.indptr, np.array([1.0]),
            np.array([6, 0, 0]), np.array([True, False, False]),
        )
        assert with_backoff == pytest.approx(without)
