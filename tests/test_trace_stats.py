"""Unit coverage for the structured trace (:mod:`repro.simnet.trace`)
and the simulation cost counters (:mod:`repro.simnet.stats`) — dormant
plumbing the observability layer now builds on."""

from __future__ import annotations

import pytest

from repro.simnet.stats import STATS_ENV, SimStats, stats_enabled
from repro.simnet.trace import NullTrace, Trace, TraceRecord


class TestTrace:
    def _trace(self) -> Trace:
        trace = Trace()
        trace.emit(0.0, "flow.inject", fid=1, src=0, dst=1)
        trace.emit(1.0, "flow.complete", fid=1, src=0, dst=1)
        trace.emit(2.0, "flow.inject", fid=2, src=1, dst=0)
        return trace

    def test_emit_appends_in_order(self):
        trace = self._trace()
        assert len(trace) == 3
        assert [r.time for r in trace] == [0.0, 1.0, 2.0]

    def test_by_category_preserves_emission_order(self):
        trace = self._trace()
        injects = trace.by_category("flow.inject")
        assert [r["fid"] for r in injects] == [1, 2]
        assert trace.by_category("no.such") == []

    def test_categories_are_distinct(self):
        assert self._trace().categories() == {
            "flow.inject", "flow.complete",
        }
        assert Trace().categories() == set()

    def test_record_payload_access(self):
        record = TraceRecord(0.5, "x", {"rank": 3})
        assert record["rank"] == 3
        with pytest.raises(KeyError):
            record["missing"]

    def test_disabled_trace_drops_records(self):
        trace = Trace(enabled=False)
        trace.emit(0.0, "flow.inject", fid=1)
        assert len(trace) == 0

    def test_null_trace_drops_everything(self):
        null = NullTrace()
        null.emit(0.0, "flow.inject", fid=1)
        null.emit(1.0, "flow.complete", fid=1)
        assert len(null) == 0
        assert not null.enabled
        assert isinstance(null, Trace)  # drop-in for trace consumers


class TestSimStats:
    def test_merged_sums_counters_and_keeps_the_engine(self):
        first = SimStats(engine="fluid", resolves=3, epochs=5, events=11)
        second = SimStats(engine="fluid", resolves=2, epochs=1, events=4)
        merged = first.merged(second)
        assert merged == SimStats(
            engine="fluid", resolves=5, epochs=6, events=15
        )
        # Frozen inputs are untouched.
        assert first.resolves == 3 and second.resolves == 2

    @pytest.mark.parametrize(
        "value", ["1", "true", "YES", " on ", "True"]
    )
    def test_truthy_env_values_enable_stats(self, monkeypatch, value):
        monkeypatch.setenv(STATS_ENV, value)
        assert stats_enabled()

    @pytest.mark.parametrize("value", ["", "0", "off", "no", "false"])
    def test_everything_else_stays_off(self, monkeypatch, value):
        monkeypatch.setenv(STATS_ENV, value)
        assert not stats_enabled()

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(STATS_ENV, raising=False)
        assert not stats_enabled()
