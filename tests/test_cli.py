"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "tableS" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig06", "--scale", "smoke"])
        assert args.experiment == "fig06"
        assert args.scale == "smoke"


class TestPredict:
    def test_predict_prints_estimate(self, capsys):
        assert main(["predict", "gigabit-ethernet", "40", "1024kB"]) == 0
        out = capsys.readouterr().out
        assert "prediction" in out
        assert "lower bound" in out

    def test_predict_parses_size_strings(self, capsys):
        assert main(["predict", "myrinet", "24", "256kB"]) == 0

    def test_predict_beta_includes_wire_framing(self, capsys):
        # The β behind the printed prediction must come through the
        # transport's wire-byte accounting, not the raw 1/capacity.
        from repro.clusters.profiles import get_cluster
        from repro.core.hockney import HockneyParams
        from repro.core.signature import ContentionSignature
        from repro.units import format_time

        cluster = get_cluster("gigabit-ethernet")
        size = 1_048_576
        topology = cluster.topology(2)
        capacity = topology.links[topology.hosts[0].tx_link].capacity
        beta = cluster.transport.effective_beta(size, capacity)
        assert beta > 1.0 / capacity  # framing strictly inflates β
        expected = ContentionSignature(
            gamma=cluster.paper.gamma,
            delta=cluster.paper.delta,
            threshold=cluster.paper.threshold,
            hockney=HockneyParams(
                alpha=cluster.transport.base_latency, beta=beta
            ),
        ).predict(40, size)

        assert main(["predict", "gigabit-ethernet", "40", "1024kB"]) == 0
        out = capsys.readouterr().out
        assert format_time(float(expected)) in out


class TestRunSmoke:
    def test_run_experiment_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig02.csv"
        assert main([
            "run", "fig02", "--scale", "smoke", "--csv", str(csv_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "Average bandwidth" in out
        assert csv_path.exists()

    def test_characterize_small(self, capsys):
        assert main([
            "characterize", "gigabit-ethernet", "--nprocs", "6",
            "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "signature" in out
        assert "gamma" in out
