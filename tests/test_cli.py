"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "tableS" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig06", "--scale", "smoke"])
        assert args.experiment == "fig06"
        assert args.scale == "smoke"


class TestPredict:
    def test_predict_prints_estimate(self, capsys):
        assert main(["predict", "gigabit-ethernet", "40", "1024kB"]) == 0
        out = capsys.readouterr().out
        assert "prediction" in out
        assert "lower bound" in out

    def test_predict_parses_size_strings(self, capsys):
        assert main(["predict", "myrinet", "24", "256kB"]) == 0

    def test_predict_beta_includes_wire_framing(self, capsys):
        # The β behind the printed prediction must come through the
        # transport's wire-byte accounting, not the raw 1/capacity.
        from repro.clusters.profiles import get_cluster
        from repro.core.hockney import HockneyParams
        from repro.core.signature import ContentionSignature
        from repro.units import format_time

        cluster = get_cluster("gigabit-ethernet")
        size = 1_048_576
        topology = cluster.topology(2)
        capacity = topology.links[topology.hosts[0].tx_link].capacity
        beta = cluster.transport.effective_beta(size, capacity)
        assert beta > 1.0 / capacity  # framing strictly inflates β
        expected = ContentionSignature(
            gamma=cluster.paper.gamma,
            delta=cluster.paper.delta,
            threshold=cluster.paper.threshold,
            hockney=HockneyParams(
                alpha=cluster.transport.base_latency, beta=beta
            ),
        ).predict(40, size)

        assert main(["predict", "gigabit-ethernet", "40", "1024kB"]) == 0
        out = capsys.readouterr().out
        assert format_time(float(expected)) in out


class TestRunSmoke:
    def test_run_experiment_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig02.csv"
        assert main([
            "run", "fig02", "--scale", "smoke", "--csv", str(csv_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "Average bandwidth" in out
        assert csv_path.exists()

    def test_characterize_small(self, capsys):
        assert main([
            "characterize", "gigabit-ethernet", "--nprocs", "6",
            "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "signature" in out
        assert "gamma" in out


SCENARIO_TOML = """
[scenario]
name = "cli-test-scenario"
base = "gigabit-ethernet"

[scenario.transport]
mux_overhead = 6.0e-3

[scenario.workload]
nprocs = [4]
sizes = ["1kB", "2kB", "4kB", "8kB"]
reps = 1
"""


class TestListSections:
    def test_list_all_includes_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("experiments:", "clusters:", "topologies:",
                        "algorithms:", "backends:"):
            assert section in out
        assert "gigabit-ethernet" in out
        assert "edge-core" in out
        assert "bruck" in out
        assert "mpi4py" in out

    def test_list_single_section(self, capsys):
        assert main(["list", "clusters"]) == 0
        out = capsys.readouterr().out
        assert "gigabit-ethernet" in out
        assert "fig06" not in out


class TestNearMissClusterNames:
    def test_characterize_accepts_underscore_variant(self, capsys):
        assert main([
            "characterize", "gigabit_ethernet", "--nprocs", "4", "--reps", "1",
        ]) == 0
        assert "gigabit-ethernet" in capsys.readouterr().out

    def test_predict_accepts_case_variant(self, capsys):
        assert main(["predict", "Myrinet", "8", "64kB"]) == 0

    def test_unknown_cluster_clean_error(self, capsys):
        # Satellite bugfix: a clean message + non-zero exit, no traceback.
        assert main(["predict", "infiniband", "8", "64kB"]) == 2
        err = capsys.readouterr().err
        assert "unknown cluster 'infiniband'" in err
        assert "known:" in err
        assert main([
            "characterize", "no-such-cluster", "--nprocs", "4",
        ]) == 2
        assert "unknown cluster" in capsys.readouterr().err


class TestScenarioCli:
    def test_run_scenario_sweeps_and_fits(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        path.write_text(SCENARIO_TOML)
        csv_path = tmp_path / "rows.csv"
        assert main([
            "run", "--scenario", str(path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cli-test-scenario" in out
        assert "simulated : 4" in out
        assert "signature" in out
        assert csv_path.exists()

    def test_run_without_experiment_or_scenario_errors(self, capsys):
        assert main(["run"]) == 2
        assert "experiment id or --scenario" in capsys.readouterr().err

    def test_run_scenario_missing_file(self, capsys):
        assert main(["run", "--scenario", "/no/such/file.toml"]) == 2
        assert capsys.readouterr().err

    def test_sweep_scenario_cache_hit(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        path.write_text(SCENARIO_TOML)
        cache = str(tmp_path / "cache")
        args = ["sweep", "--scenario", str(path), "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "simulated : 4" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "simulated : 0" in second
        assert "cached    : 4" in second

    def test_characterize_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        path.write_text(SCENARIO_TOML)
        assert main(["characterize", str(path), "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "cli-test-scenario" in out
        assert "signature" in out

    def test_characterize_missing_scenario_file_clean_exit(self, capsys):
        assert main(["characterize", "/no/such/file.toml"]) == 2
        assert capsys.readouterr().err

    def test_predict_missing_scenario_file_clean_exit(self, capsys):
        assert main(["predict", "/no/such/file.toml", "8", "64kB"]) == 2
        assert capsys.readouterr().err

    def test_list_survives_undocumented_plugins(self, capsys):
        from repro import api
        from repro.registry import ALGORITHMS, TOPOLOGIES

        @api.register_algorithm("test-undocumented-alg")
        def alg(ctx, msg_size):
            yield []

        @api.register_topology("test-undocumented-topo")
        def topo(n_hosts):
            pass

        try:
            assert main(["list"]) == 0
            out = capsys.readouterr().out
            assert "test-undocumented-alg" in out
            assert "test-undocumented-topo" in out
        finally:
            ALGORITHMS.unregister("test-undocumented-alg")
            TOPOLOGIES.unregister("test-undocumented-topo")

    def test_run_scenario_bad_json_clean_exit(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["run", "--scenario", str(path)]) == 2
        assert "invalid scenario JSON" in capsys.readouterr().err

    def test_run_scenario_scalar_nprocs_clean_exit(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(
            "[scenario]\nname = \"x\"\nbase = \"myrinet\"\n"
            "[scenario.workload]\nnprocs = 4\nsizes = [1024]\n"
        )
        assert main(["run", "--scenario", str(path)]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_run_rejects_experiment_plus_scenario(self, tmp_path, capsys):
        path = tmp_path / "s.toml"
        path.write_text(SCENARIO_TOML)
        assert main(["run", "fig02", "--scenario", str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_characterize_scenario_honours_workload_seed_and_reps(
        self, tmp_path, monkeypatch
    ):
        import repro.api as api_mod

        path = tmp_path / "s.toml"
        path.write_text(
            SCENARIO_TOML.replace("reps = 1", "reps = 1\nseeds = [7]")
        )
        seen = {}
        original = api_mod.characterize_cluster

        def spy(cluster, **kwargs):
            seen.update(kwargs)
            return original(cluster, **kwargs)

        monkeypatch.setattr(api_mod, "characterize_cluster", spy)
        assert main(["characterize", str(path)]) == 0
        assert seen["reps"] == 1
        assert seen["seed"] == 7

    def test_run_scenario_too_few_sizes_clean_exit(self, tmp_path, capsys):
        path = tmp_path / "thin.toml"
        path.write_text(
            "[scenario]\nname = \"thin\"\nbase = \"myrinet\"\n"
            "[scenario.workload]\nnprocs = [4]\nsizes = [1024, 2048]\nreps = 1\n"
        )
        assert main(["run", "--scenario", str(path)]) == 1
        captured = capsys.readouterr()
        assert "simulated : 2" in captured.out  # the sweep itself ran
        assert "cannot fit signature" in captured.err

    def test_sweep_scenario_rejects_axis_flags(self, tmp_path, capsys):
        path = tmp_path / "s.toml"
        path.write_text(SCENARIO_TOML)
        assert main([
            "sweep", "--scenario", str(path), "--nprocs", "32,64",
        ]) == 2
        assert "--nprocs" in capsys.readouterr().err

    def test_cluster_name_not_shadowed_by_local_file(
        self, tmp_path, monkeypatch, capsys
    ):
        # A stray file named exactly like a cluster must not hijack
        # name resolution.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "myrinet").write_text("not a scenario")
        assert main(["predict", "myrinet", "8", "64kB"]) == 0
        assert "prediction" in capsys.readouterr().out
