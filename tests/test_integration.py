"""Integration tests: the full paper pipeline on small virtual clusters."""

import numpy as np
import pytest

from repro.clusters.profiles import gigabit_ethernet, myrinet
from repro.core.errors import relative_error_percent
from repro.measure import characterize_cluster, measure_alltoall
from repro.simmpi.collectives import alltoall_direct
from repro.simnet.trace import Trace


class TestCharacterizationPipeline:
    def test_end_to_end_gige(self, gige_cluster):
        # n=12 sits at the saturation knee (12 NICs ~ backplane), so the
        # fitted gamma must already exceed 1.
        ch = characterize_cluster(
            gige_cluster,
            sample_nprocs=12,
            sample_sizes=(65_536, 131_072, 262_144, 524_288, 1_048_576),
            reps=1,
            pingpong_reps=1,
            seed=0,
        )
        assert ch.signature.gamma > 1.0
        # Prediction at an unseen size interpolates sanely.
        t_mid = float(ch.predictor.predict(8, 393_216))
        t_lo = float(ch.predictor.predict(8, 262_144))
        t_hi = float(ch.predictor.predict(8, 524_288))
        assert t_lo < t_mid < t_hi

    def test_signature_portable_across_n(self, gige_cluster):
        # Fit at n'=12, evaluate at n=16: error must be far better than
        # the contention-free bound's error.
        ch = characterize_cluster(
            gige_cluster,
            sample_nprocs=12,
            sample_sizes=(131_072, 262_144, 524_288, 1_048_576),
            reps=1,
            pingpong_reps=1,
            seed=1,
        )
        probe = measure_alltoall(gige_cluster, 16, 524_288, reps=1, seed=2)
        pred_err = abs(
            relative_error_percent(
                probe.mean_time, float(ch.predictor.predict(16, 524_288))
            )
        )
        bound_err = abs(
            relative_error_percent(
                probe.mean_time, float(ch.predictor.lower_bound(16, 524_288))
            )
        )
        assert pred_err < bound_err

    def test_myrinet_delta_is_pruned(self, myrinet_cluster):
        ch = characterize_cluster(
            myrinet_cluster,
            sample_nprocs=12,
            sample_sizes=(131_072, 262_144, 524_288, 1_048_576),
            reps=2,
            pingpong_reps=1,
            seed=0,
        )
        # The gm stack has no kernel demux: delta must be ~0 (paper §8.3).
        assert ch.signature.delta < 2e-3


class TestSimulationInvariants:
    def test_alltoall_trace_consistency(self, gige_cluster):
        trace = Trace()
        runtime = gige_cluster.runtime(6, seed=0, trace=trace)
        runtime.run(alltoall_direct, 65_536)
        n = 6
        sends = [
            r for r in trace.by_category("mpi.isend") if r["src"] != r["dst"]
        ]
        recvs = trace.by_category("mpi.recv_complete")
        assert len(sends) == n * (n - 1)
        # Every posted receive completed exactly once.
        assert len(recvs) == n * (n - 1)
        # Per-pair delivery matches per-pair sends.
        sent_pairs = sorted((r["src"], r["dst"]) for r in sends)
        recv_pairs = sorted((r["src"], r["rank"]) for r in recvs)
        assert sent_pairs == recv_pairs

    def test_completion_time_bounded_below_by_proposition1(self, gige_cluster):
        from repro.core.bounds import alltoall_lower_bound
        from repro.core.hockney import HockneyParams

        n, m = 8, 524_288
        result = gige_cluster.runtime(n, seed=0).run(alltoall_direct, m)
        # Bound with the *physical* NIC parameters (no framing): the
        # simulation can never beat physics.
        nic = gige_cluster.topology(2).links[0].capacity
        physical = HockneyParams(alpha=0.0, beta=1.0 / nic)
        assert result.duration >= alltoall_lower_bound(n, m, physical)

    def test_contention_ordering_across_networks(
        self, gige_cluster, fe_cluster, myrinet_cluster
    ):
        """The paper's headline: gamma_gige > gamma_myrinet > gamma_fe.

        The ordering holds once the fabrics are saturated (n = 24 is the
        paper's FE/Myrinet sample size; GigE saturates above ~12).
        """
        n, m = 24, 262_144
        ratios = {}
        for cluster in (gige_cluster, fe_cluster, myrinet_cluster):
            topo = cluster.topology(2)
            nic = topo.links[topo.hosts[0].tx_link].capacity
            sample = measure_alltoall(cluster, n, m, reps=2, seed=4)
            ideal = (n - 1) * m / nic
            ratios[cluster.name] = sample.mean_time / ideal
        assert (
            ratios["gigabit-ethernet"]
            > ratios["myrinet"]
            > ratios["fast-ethernet"] * 0.9
        )

    def test_seeded_runs_bitwise_reproducible(self, myrinet_cluster):
        a = myrinet_cluster.runtime(8, seed=11).run(alltoall_direct, 131_072)
        b = myrinet_cluster.runtime(8, seed=11).run(alltoall_direct, 131_072)
        assert a.duration == b.duration
        assert a.rank_finish_times == b.rank_finish_times


@pytest.mark.slow
class TestPaperScaleSignatures:
    def test_gige_gamma_band_at_moderate_scale(self, gige_cluster):
        # At n=24 (below the paper's 40) gamma is already well above 1.
        ch = characterize_cluster(
            gige_cluster,
            sample_nprocs=24,
            sample_sizes=(131_072, 262_144, 524_288, 1_048_576),
            reps=1,
            pingpong_reps=1,
            seed=0,
        )
        assert 1.5 < ch.signature.gamma < 8.0

    def test_myrinet_gamma_band(self, myrinet_cluster):
        ch = characterize_cluster(
            myrinet_cluster,
            sample_nprocs=24,
            sample_sizes=(131_072, 262_144, 524_288, 1_048_576),
            reps=2,
            pingpong_reps=1,
            seed=0,
        )
        assert 1.5 < ch.signature.gamma < 4.0
