"""Observability layer 2: trace exporters, the ``trace`` CLI, and the
cache-identity guarantee (instrumentation must not move cache keys)."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cli import main
from repro.clusters.profiles import get_cluster
from repro.obs import EXPORT_FORMATS, to_chrome, to_jsonl, write_trace
from repro.obs.export import chrome_events
from repro.simnet.trace import Trace
from repro.sweeps.cache import point_key, profile_fingerprint
from repro.sweeps.spec import SweepPoint


def _synthetic_trace() -> Trace:
    trace = Trace()
    trace.emit(0.0, "mpi.isend", src=1, dst=2, nbytes=64, tag=0)
    trace.emit(0.0, "flow.inject", fid=7, src=1, dst=2, nbytes=64, label="")
    trace.emit(1.5e-3, "flow.complete", fid=7, src=1, dst=2,
               duration=1.5e-3, losses=0, label="")
    trace.emit(2e-3, "vector.epoch", active=3, completed=1, dt=5e-4)
    trace.emit(2e-3, "flow.inject", fid=9, src=0, dst=1, nbytes=32, label="")
    return trace


class TestJsonl:
    def test_round_trips_every_record(self):
        text = to_jsonl(_synthetic_trace())
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) == 5
        assert rows[0]["category"] == "mpi.isend"
        assert rows[1]["fid"] == 7
        assert all("time" in row for row in rows)

    def test_empty_trace_exports_empty(self):
        assert to_jsonl(Trace()) == ""


class TestChrome:
    def test_inject_complete_pairs_become_duration_slices(self):
        events = chrome_events(_synthetic_trace())
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        (event,) = slices
        assert event["name"] == "flow 1->2"
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(1.5e3)  # 1.5 ms in µs
        assert event["args"]["nbytes"] == 64

    def test_unpaired_injects_render_as_instants(self):
        events = chrome_events(_synthetic_trace())
        incomplete = [
            e for e in events if e["name"] == "flow.inject (incomplete)"
        ]
        assert len(incomplete) == 1
        assert incomplete[0]["args"]["fid"] == 9

    def test_epoch_counter_and_rank_instants(self):
        events = chrome_events(_synthetic_trace())
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["args"]["active"] == 3
        isend = [e for e in events if e["name"] == "mpi.isend"]
        assert isend and isend[0]["tid"] == 1  # tracked by src rank

    def test_document_is_valid_json_with_metadata(self):
        document = json.loads(to_chrome(_synthetic_trace()))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert all("ph" in e and "pid" in e for e in events)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"network flows", "mpi ranks", "engine"} <= names

    def test_write_trace_validates_the_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(Trace(), tmp_path / "t.json", fmt="pprof")
        out = write_trace(
            _synthetic_trace(), tmp_path / "deep" / "t.jsonl", fmt="jsonl"
        )
        assert out.exists() and out.read_text().count("\n") == 5

    def test_format_registry_is_complete(self):
        assert set(EXPORT_FORMATS) == {"chrome", "jsonl"}


def _assert_valid_chrome(document: dict) -> list[dict]:
    """Acceptance shape check: valid ph/ts/pid on every event."""
    events = document["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in {"M", "X", "i", "C"}
        assert isinstance(event["pid"], int)
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float))
        if event["ph"] == "X":
            assert event["dur"] >= 0
    return events


class TestRealTraces:
    """Both engines' traces must export to loadable Chrome JSON."""

    def test_fluid_trace_exports_to_chrome(self):
        obs = api.Scenario.from_name("gigabit-ethernet").trace(6, 32768)
        assert obs.engine == "fluid"
        events = _assert_valid_chrome(json.loads(to_chrome(obs.trace)))
        assert any(e["ph"] == "X" for e in events)
        assert {"flow.inject", "flow.complete"} <= obs.trace.categories()

    def test_vector_trace_exports_to_chrome(self):
        obs = api.Scenario.from_name("myrinet").trace(6, 32768, engine="vector")
        assert obs.engine == "vector"
        events = _assert_valid_chrome(json.loads(to_chrome(obs.trace)))
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)
        assert {
            "flow.inject", "flow.complete", "vector.epoch", "vector.phase"
        } <= obs.trace.categories()


class TestTraceCli:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "gigabit-ethernet", "--nprocs", "6",
            "--size", "32kB", "--out", str(out),
        ])
        assert code == 0
        _assert_valid_chrome(json.loads(out.read_text()))
        stdout = capsys.readouterr().out
        assert "MED" in stdout and "engine" in stdout

    def test_trace_streams_jsonl_to_stdout(self, capsys):
        code = main([
            "trace", "myrinet", "--engine", "vector",
            "--nprocs", "4", "--size", "8kB", "--format", "jsonl",
        ])
        assert code == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert rows and {"time", "category"} <= set(rows[0])
        # Summary goes to stderr so the payload stays pipeable.
        assert "engine" in captured.err

    def test_trace_rejects_unknown_cluster(self, capsys):
        assert main(["trace", "no-such-cluster"]) == 2
        assert "no-such-cluster" in capsys.readouterr().err

    def test_trace_lossy_cluster_on_vector_engine(self, capsys):
        # gigabit-ethernet models loss; since the vector engine grew
        # its vectorized loss overlay this traces like any other run.
        code = main([
            "trace", "gigabit-ethernet", "--engine", "vector",
            "--nprocs", "4", "--size", "8kB",
        ])
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["traceEvents"]
        assert "engine    : vector" in captured.err

    def test_list_includes_trace_formats(self, capsys):
        assert main(["list", "trace-formats"]) == 0
        out = capsys.readouterr().out
        assert "chrome" in out and "jsonl" in out


class TestCacheIdentity:
    """Observability must not move default cache keys by one byte."""

    #: Pinned in tests/test_engines.py since PR 5 and in
    #: tests/test_placement.py since PR 6; the obs wiring (engine
    #: trace=/timeline= kwargs, sweep profiling) must not move it.
    EXPECTED_GIGE = (
        "85b64bc1fb89a639f7835b46e012923c2e3e06f008fb844be02128ec9827ac94"
    )

    def test_default_point_key_is_unchanged(self):
        point = SweepPoint(
            cluster="gigabit-ethernet", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        fingerprint = profile_fingerprint(get_cluster("gigabit-ethernet"))
        assert point_key(point, fingerprint) == self.EXPECTED_GIGE
