"""Unit + property tests for the message exchange digraph and bounds."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    alltoall_lower_bound,
    bandwidth_lower_bound,
    combined_lower_bound,
    min_startups,
    naive_model,
)
from repro.core.hockney import HockneyParams
from repro.core.med import MED

PARAMS = HockneyParams(alpha=1e-4, beta=1e-8)


class TestMedConstruction:
    def test_alltoall_complete_digraph(self):
        med = MED.alltoall(4, 100)
        assert med.n_processes == 4
        assert med.n_messages == 12
        assert med.weight(0, 1) == 100
        assert med.weight(0, 0) == 0

    def test_self_message_rejected(self):
        med = MED(3)
        with pytest.raises(ValueError):
            med.add_message(1, 1, 10)

    def test_weights_accumulate(self):
        med = MED(2)
        med.add_message(0, 1, 10)
        med.add_message(0, 1, 5)
        assert med.weight(0, 1) == 15

    def test_from_matrix_roundtrip(self):
        W = np.array([[0, 5, 0], [2, 0, 9], [0, 0, 0]])
        med = MED.from_matrix(W)
        assert np.array_equal(med.to_matrix(), W)

    def test_from_matrix_requires_square(self):
        with pytest.raises(ValueError):
            MED.from_matrix(np.zeros((2, 3)))

    def test_is_regular_alltoall(self):
        assert MED.alltoall(5, 64).is_regular_alltoall()
        irregular = MED(3)
        irregular.add_message(0, 1, 10)
        assert not irregular.is_regular_alltoall()


class TestDegreesAndBytes:
    def test_alltoall_degrees(self):
        med = MED.alltoall(6, 10)
        assert med.max_out_degree == 5
        assert med.max_in_degree == 5
        assert med.out_degree(0) == 5
        assert med.in_degree(3) == 5

    def test_send_recv_bytes(self):
        med = MED.alltoall(4, 100)
        assert med.send_bytes(0) == 300
        assert med.recv_bytes(2) == 300
        assert med.max_send_bytes == 300
        assert med.max_recv_bytes == 300

    def test_asymmetric_exchange(self):
        med = MED(3)
        med.add_message(0, 1, 100)
        med.add_message(0, 2, 100)
        med.add_message(1, 0, 7)
        assert med.max_out_degree == 2
        assert med.max_in_degree == 1
        assert med.max_send_bytes == 200
        assert med.max_recv_bytes == 100


class TestBounds:
    def test_claim1_startups(self):
        assert min_startups(MED.alltoall(8, 1)) == 7

    def test_claim2_bandwidth(self):
        med = MED.alltoall(4, 1000)
        assert bandwidth_lower_bound(med, PARAMS) == pytest.approx(
            3000 * PARAMS.beta
        )

    def test_claim3_combines(self):
        med = MED.alltoall(4, 1000)
        expected = 3 * PARAMS.alpha + 3000 * PARAMS.beta
        assert combined_lower_bound(med, PARAMS) == pytest.approx(expected)

    def test_proposition1_matches_formula(self):
        n, m = 24, 1_048_576
        expected = (n - 1) * (PARAMS.alpha + m * PARAMS.beta)
        assert alltoall_lower_bound(n, m, PARAMS) == pytest.approx(expected)

    def test_proposition1_equals_claim3_for_regular_alltoall(self):
        n, m = 7, 4096
        med = MED.alltoall(n, m)
        assert combined_lower_bound(med, PARAMS) == pytest.approx(
            alltoall_lower_bound(n, m, PARAMS)
        )

    def test_naive_model_alias(self):
        assert naive_model(10, 100, PARAMS) == alltoall_lower_bound(10, 100, PARAMS)

    def test_vectorised_over_m(self):
        sizes = np.array([1, 10, 100])
        bounds = alltoall_lower_bound(4, sizes, PARAMS)
        assert bounds.shape == (3,)
        assert np.all(np.diff(bounds) > 0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            alltoall_lower_bound(0, 10, PARAMS)
        with pytest.raises(ValueError):
            alltoall_lower_bound(4, -1, PARAMS)


class TestBoundProperties:
    @given(
        n=st.integers(min_value=2, max_value=32),
        m=st.integers(min_value=1, max_value=10**7),
    )
    def test_prop1_consistency_with_med(self, n, m):
        med = MED.alltoall(n, m)
        assert combined_lower_bound(med, PARAMS) == pytest.approx(
            alltoall_lower_bound(n, m, PARAMS), rel=1e-12
        )

    @given(
        n=st.integers(min_value=2, max_value=32),
        m=st.integers(min_value=1, max_value=10**6),
    )
    def test_bound_monotone_in_n_and_m(self, n, m):
        assert alltoall_lower_bound(n + 1, m, PARAMS) > alltoall_lower_bound(
            n, m, PARAMS
        )
        assert alltoall_lower_bound(n, m + 1, PARAMS) > alltoall_lower_bound(
            n, m, PARAMS
        )

    @given(st.integers(min_value=2, max_value=24))
    def test_startups_match_degree_for_alltoall(self, n):
        assert min_startups(MED.alltoall(n, 1)) == n - 1
