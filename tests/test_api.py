"""Tests for the repro.api facade (Scenario + registry helpers)."""

import pytest

from repro import api
from repro.exceptions import ScenarioError
from repro.registry import CLUSTERS, TOPOLOGIES
from repro.sweeps import ResultCache, SweepRunner


def tiny_scenario_dict(**overrides):
    base = {
        "name": "tiny-edge",
        "base": "gigabit-ethernet",
        "topology": {
            "factory": "edge-core",
            "params": {
                "nic_bandwidth": 117.6e6,
                "hosts_per_edge": 2,
                "trunk_bandwidth": 200e6,
            },
        },
        "workload": {
            "nprocs": [4],
            "sizes": [1_024, 2_048, 4_096, 8_192],
            "seeds": [0],
            "reps": 1,
        },
    }
    base.update(overrides)
    return base


class TestListings:
    def test_list_helpers_match_registries(self):
        assert api.list_clusters() == CLUSTERS.names()
        assert api.list_topologies() == TOPOLOGIES.names()
        assert "direct" in api.list_algorithms()
        assert "sim" in api.list_backends()


class TestConstructors:
    def test_from_name_accepts_aliases(self):
        assert api.Scenario.from_name("Gige").name == "gigabit-ethernet"
        assert api.Scenario.from_name("fast_ethernet").profile.name == "fast-ethernet"

    def test_from_name_workload_kwargs(self):
        sc = api.Scenario.from_name("myrinet", nprocs=(8, 16), reps=1)
        assert sc.spec.workload.nprocs == (8, 16)
        assert sc.spec.workload.fit_nprocs == 16

    def test_from_file(self, tmp_path):
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        path = sc.spec.save(tmp_path / "tiny.toml")
        loaded = api.Scenario.from_file(path)
        assert loaded.spec == sc.spec


class TestPipeline:
    def test_measure_defaults_from_workload(self):
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        sample = sc.measure()
        assert sample.n_processes == 4
        assert sample.msg_size == 1_024
        assert sample.mean_time > 0

    def test_sweep_points_cover_grid(self):
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        points = sc.sweep_points()
        assert len(points) == 4
        assert {p.cluster for p in points} == {"tiny-edge"}
        assert all(p.algorithm == "direct" for p in points)

    def test_sweep_and_cache_hit(self, tmp_path):
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path / "cache"))
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        first = sc.sweep(runner=runner)
        assert first.n_simulated == 4 and first.n_cached == 0
        second = api.Scenario.from_dict(tiny_scenario_dict()).sweep(runner=runner)
        assert second.n_simulated == 0 and second.n_cached == 4
        assert [s.mean_time for s in first.samples] == [
            s.mean_time for s in second.samples
        ]

    def test_parallel_sweep_matches_serial(self, tmp_path):
        sc_serial = api.Scenario.from_dict(tiny_scenario_dict())
        sc_parallel = api.Scenario.from_dict(tiny_scenario_dict())
        serial = sc_serial.sweep(runner=SweepRunner(workers=1))
        parallel = sc_parallel.sweep(runner=SweepRunner(workers=2))
        assert [s.mean_time for s in serial.samples] == [
            s.mean_time for s in parallel.samples
        ]

    def test_fit_signature_cached_on_instance(self):
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        ch = sc.fit_signature()
        assert ch is sc.fit_signature()
        assert ch.signature.gamma > 0
        assert sc.predict(6, 16_384) > 0

    def test_predict_paper_source(self):
        sc = api.Scenario.from_name("gigabit-ethernet")
        assert sc.predict(40, 1_048_576, source="paper") > 0
        with pytest.raises(ValueError, match="unknown predict source"):
            sc.predict(4, 1_024, source="oracle")

    def test_paper_signature_rejected_for_custom(self):
        sc = api.Scenario.from_dict(tiny_scenario_dict())
        with pytest.raises(ScenarioError, match="no paper-reported signature"):
            sc.paper_signature()

    def test_backend_binding(self):
        sc = api.Scenario.from_name("myrinet")
        assert "myrinet" in sc.backend("sim").name


class TestEndToEndExtension:
    """The acceptance demo: new fabric + scenario, zero core edits."""

    def test_registered_topology_plus_toml_scenario(self, tmp_path):
        @api.register_topology("test-dumbbell")
        def dumbbell(n_hosts, *, nic_bandwidth, bottleneck):
            # Two switch islands joined by one bottleneck trunk.
            from repro.simnet.topology import Topology

            topo = Topology(name="dumbbell")
            left = topo.add_switch()
            right = topo.add_switch()
            topo.connect_switches(left, right, bandwidth=bottleneck)
            for h in range(n_hosts):
                topo.add_host(left if h % 2 == 0 else right,
                              nic_bandwidth=nic_bandwidth)
            return topo.finalize()

        try:
            path = tmp_path / "dumbbell.toml"
            path.write_text(
                """
                [scenario]
                name = "dumbbell-gige"
                base = "gigabit-ethernet"

                [scenario.topology]
                factory = "test-dumbbell"
                [scenario.topology.params]
                nic_bandwidth = 117.6e6
                bottleneck = 60e6

                [scenario.workload]
                nprocs = [4]
                sizes = ["1kB", "4kB", "16kB", "64kB"]
                reps = 1
                """
            )
            sc = api.Scenario.from_file(path)
            sweep = sc.sweep(runner=SweepRunner(workers=1))
            assert sweep.n_points == 4
            ch = sc.fit_signature()
            assert ch.signature.gamma > 0
            # The bottleneck fabric really is what was simulated:
            topo = sc.profile.topology(4)
            assert len(topo.switches) == 2
        finally:
            TOPOLOGIES.unregister("test-dumbbell")

    def test_registered_cluster_visible_everywhere(self):
        from repro.clusters.profiles import get_cluster

        @api.register_cluster("test-cluster")
        def factory():
            return get_cluster("myrinet").with_overrides(name="test-cluster")

        try:
            assert "test-cluster" in api.list_clusters()
            assert api.Scenario.from_name("Test_Cluster").profile.name == "test-cluster"
            assert get_cluster("test-cluster").name == "test-cluster"
        finally:
            CLUSTERS.unregister("test-cluster")
