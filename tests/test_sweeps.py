"""Unit tests for the parallel sweep engine and its result cache."""

import json

import pytest

from repro.cli import main
from repro.clusters.profiles import gigabit_ethernet, myrinet
from repro.core.signature import AlltoallSample
from repro.measure.alltoall import measure_alltoall, sweep_grid, sweep_sizes
from repro.sweeps import (
    CACHE_VERSION,
    ResultCache,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    configure_default_runner,
    point_key,
    profile_fingerprint,
)
import repro.exec.task as task_mod
import repro.sweeps.runner as runner_mod


def tiny_spec(**overrides):
    defaults = dict(
        clusters=("gigabit-ethernet",),
        nprocs=(4,),
        sizes=(2_048, 8_192),
        algorithms=("direct",),
        seeds=(0,),
        reps=1,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_expansion_order_is_deterministic(self):
        spec = tiny_spec(
            clusters=("gigabit-ethernet", "myrinet"),
            algorithms=("direct", "bruck"),
            seeds=(0, 1),
        )
        assert spec.n_points == 16
        points = spec.points()
        assert points == spec.points()
        assert len(points) == 16
        # clusters vary slowest, seeds fastest
        assert points[0].cluster == "gigabit-ethernet"
        assert points[0].seed == 0
        assert points[1].seed == 1
        assert points[-1].cluster == "myrinet"

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="axis"):
            tiny_spec(nprocs=())

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            tiny_spec(algorithms=("nope",))

    def test_rejects_invalid_point_values_eagerly(self):
        # Validated at spec level so the CLI reports them as bad specs
        # instead of crashing during lazy expansion.
        with pytest.raises(ValueError, match="nprocs"):
            tiny_spec(nprocs=(1,))
        with pytest.raises(ValueError, match="sizes"):
            tiny_spec(sizes=(0,))

    def test_point_validation(self):
        with pytest.raises(ValueError):
            SweepPoint("x", 1, 1024, "direct", 0, 1)
        with pytest.raises(ValueError):
            SweepPoint("x", 4, 0, "direct", 0, 1)

    def test_describe_mentions_cardinality(self):
        assert "2 sizes" in tiny_spec().describe()


class TestCacheKey:
    POINT = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)

    def test_key_is_stable(self):
        fp = profile_fingerprint(gigabit_ethernet())
        assert point_key(self.POINT, fp) == point_key(self.POINT, fp)

    def test_key_changes_with_point_coordinates(self):
        fp = profile_fingerprint(gigabit_ethernet())
        other = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 1, 1)
        assert point_key(self.POINT, fp) != point_key(other, fp)

    def test_key_changes_with_profile_params(self):
        base = gigabit_ethernet()
        tweaked = base.with_overrides(start_skew_scale=123e-6)
        assert point_key(self.POINT, profile_fingerprint(base)) != point_key(
            self.POINT, profile_fingerprint(tweaked)
        )

    def test_fingerprint_captures_topology(self):
        gige = profile_fingerprint(gigabit_ethernet())
        myri = profile_fingerprint(myrinet())
        assert gige["topology"] != myri["topology"]

    def test_fingerprint_is_jsonable(self):
        json.dumps(profile_fingerprint(gigabit_ethernet()))
        assert isinstance(CACHE_VERSION, int)


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        sample = AlltoallSample(
            n_processes=4, msg_size=2048, mean_time=0.5, std_time=0.1, reps=3
        )
        cache.put("ab" + "0" * 62, TestCacheKey.POINT, sample)
        loaded = cache.get("ab" + "0" * 62)
        assert loaded == sample
        assert cache.hits == 1
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ab" + "0" * 62) is None

    @pytest.mark.parametrize(
        "content",
        [
            "{}",                                        # valid JSON, no sample
            '{"sample": {"n_processes": 4}}',            # missing fields
            '{"sample": {"n_processes": 1, "msg_size": 1, "mean_time": 1, "std_time": 0, "reps": 1}}',  # fails validation
            '{"sample": null}',
        ],
    )
    def test_wrong_shape_entry_is_a_miss(self, tmp_path, content):
        cache = ResultCache(tmp_path)
        path = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        assert cache.get("ab" + "0" * 62) is None
        assert cache.hits == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        sample = AlltoallSample(
            n_processes=4, msg_size=2048, mean_time=0.5, reps=1
        )
        cache.put("cd" + "0" * 62, TestCacheKey.POINT, sample)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunner:
    def test_matches_direct_measurement(self):
        spec = tiny_spec()
        result = SweepRunner(workers=1).run(spec)
        cluster = gigabit_ethernet()
        for r in result.results:
            direct = measure_alltoall(
                cluster, r.point.n_processes, r.point.msg_size,
                reps=r.point.reps, seed=r.point.seed,
                algorithm=r.point.algorithm,
            )
            assert r.sample.mean_time == direct.mean_time

    def test_parallel_equals_serial(self):
        spec = tiny_spec(nprocs=(4, 5), algorithms=("direct", "bruck"))
        serial = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        assert [s.mean_time for s in serial.samples] == [
            s.mean_time for s in parallel.samples
        ]

    def test_second_run_is_fully_cached_zero_simulations(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        first = SweepRunner(workers=1, cache=cache).run(spec)
        assert first.n_simulated == spec.n_points
        assert first.n_cached == 0

        # Second identical run must not simulate a single point: make any
        # simulation attempt blow up.  Every executor funnels through
        # repro.exec.task.run_task, so patching that module's
        # measure_alltoall intercepts all execution paths at once.
        def boom(*args, **kwargs):
            raise AssertionError("cache miss: a simulation was attempted")

        monkeypatch.setattr(task_mod, "measure_alltoall", boom)
        second = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(spec)
        assert second.n_simulated == 0
        assert second.n_cached == spec.n_points
        assert [s.mean_time for s in second.samples] == [
            s.mean_time for s in first.samples
        ]

    def test_profile_override_misses_registry_cache(self, tmp_path):
        # Same cluster name, different physics: keys must not collide.
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        point = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        runner.run_points([point])
        tweaked = gigabit_ethernet().with_overrides(start_skew_scale=5e-3)
        result = runner.run_points([point], profile=tweaked)
        assert result.n_simulated == 1  # not served from the registry entry

    def test_topology_override_misses_registry_cache(self, tmp_path):
        # Same cluster name, same transport, different fabric: the
        # per-point topology probe must separate the keys and forbid
        # the rebuild-by-name parallel fast path.
        from repro.simnet.topology import single_switch

        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        point = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        runner.run_points([point])
        slow_fabric = gigabit_ethernet().with_overrides(
            topology_factory=lambda n: single_switch(
                n, nic_bandwidth=50e6, name="gdx-gige"
            )
        )
        result = runner.run_points([point], profile=slow_fabric)
        assert result.n_simulated == 1  # fabric change invalidates the key
        assert not runner._parallel_safe(slow_fabric, [point])
        assert runner._parallel_safe(gigabit_ethernet(), [point])

    def test_unknown_cluster_rejected(self):
        spec = tiny_spec(clusters=("no-such-cluster",))
        with pytest.raises(KeyError, match="unknown clusters"):
            SweepRunner().run(spec)

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_rows_and_files(self, tmp_path):
        result = SweepRunner(workers=1).run(tiny_spec())
        fieldnames, rows = result.to_rows()
        assert fieldnames[0] == "cluster"
        assert len(rows) == 2
        csv_path = result.save_csv(tmp_path / "out" / "sweep.csv")
        jsonl_path = result.save_jsonl(tmp_path / "out" / "sweep.jsonl")
        assert csv_path.exists()
        lines = jsonl_path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["cluster"] == "gigabit-ethernet"


class TestSweepHelpersRouteThroughEngine:
    def test_sweep_sizes_accepts_runner_with_cache(self, tmp_path):
        cluster = gigabit_ethernet()
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        first = sweep_sizes(cluster, 4, [2048, 8192], reps=1, seed=0, runner=runner)
        again = sweep_sizes(cluster, 4, [2048, 8192], reps=1, seed=0, runner=runner)
        assert [s.mean_time for s in first] == [s.mean_time for s in again]
        assert runner.cache.hits == 2

    def test_sweep_grid_order_is_n_major(self):
        cluster = gigabit_ethernet()
        samples = sweep_grid(cluster, [4, 5], [2048, 8192], reps=1, seed=0)
        coords = [(s.n_processes, s.msg_size) for s in samples]
        assert coords == [(4, 2048), (4, 8192), (5, 2048), (5, 8192)]

    def test_default_runner_env_config(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        try:
            runner = configure_default_runner()
            assert runner.workers == 3
            assert runner.cache is not None
            assert runner.cache.root == tmp_path
        finally:
            # Restore a clean default for other tests even on failure.
            monkeypatch.delenv("REPRO_SWEEP_WORKERS")
            monkeypatch.delenv("REPRO_SWEEP_CACHE")
            configure_default_runner()


class TestCliSweep:
    ARGS = [
        "sweep",
        "--clusters", "gigabit-ethernet",
        "--nprocs", "4",
        "--sizes", "2kB,8kB",
        "--algorithms", "direct,bruck",
        "--reps", "1",
    ]

    def test_sweep_runs_and_writes_outputs(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        jsonl_path = tmp_path / "sweep.jsonl"
        code = main(
            self.ARGS
            + [
                "--cache-dir", str(tmp_path / "cache"),
                "--csv", str(csv_path),
                "--jsonl", str(jsonl_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "simulated : 4" in out
        assert csv_path.exists() and jsonl_path.exists()

    def test_second_cli_run_is_fully_cached(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "simulated : 0" in out
        assert "cached    : 4" in out

    def test_no_cache_flag(self, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache     : disabled" in out
        assert "slowest points:" in out

    def test_bad_workers_is_reported(self, capsys):
        assert main(self.ARGS + ["--no-cache", "--workers", "0"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_bad_spec_is_reported(self, capsys):
        assert main(self.ARGS[:1] + ["--algorithms", "nope", "--no-cache"]) == 2
        assert "invalid sweep spec" in capsys.readouterr().err

    def test_unknown_cluster_is_reported(self, capsys):
        assert (
            main(self.ARGS[:1] + ["--clusters", "nope", "--no-cache"]) == 2
        )
        assert "unknown clusters" in capsys.readouterr().err


class TestScenarioCacheKeys:
    """Satellite regression: scenario definitions feed the cache key."""

    def scenario(self, **overrides):
        from repro.scenario import ScenarioSpec

        base = {
            "name": "probe-equal",
            "base": "gigabit-ethernet",
            "topology": {
                "factory": "edge-core",
                "params": {
                    "nic_bandwidth": 117.6e6,
                    "hosts_per_edge": 8,
                    "trunk_bandwidth": 400e6,
                },
            },
            "workload": {"nprocs": [4], "sizes": [2_048], "reps": 1},
        }
        base.update(overrides)
        return ScenarioSpec.from_dict(base)

    def test_probe_equal_scenarios_get_distinct_keys(self):
        # Both fabrics build ONE edge switch at n=4 (hosts_per_edge 8 vs
        # 20 only diverges above 8 hosts), so the profile fingerprint
        # probed at the point's own n is identical — without the
        # scenario payload these two definitions would collide.
        a = self.scenario()
        b = self.scenario(
            topology={
                "factory": "edge-core",
                "params": {
                    "nic_bandwidth": 117.6e6,
                    "hosts_per_edge": 20,
                    "trunk_bandwidth": 400e6,
                },
            }
        )
        point = SweepPoint("probe-equal", 4, 2_048, "direct", 0, 1)
        fp_a = profile_fingerprint(a.build_profile(), probe_sizes=(4,))
        fp_b = profile_fingerprint(b.build_profile(), probe_sizes=(4,))
        assert fp_a == fp_b  # the probes really are indistinguishable
        assert point_key(point, fp_a, a.cache_payload()) != point_key(
            point, fp_b, b.cache_payload()
        )

    def test_no_scenario_leaves_keys_unchanged(self):
        point = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        fp = profile_fingerprint(gigabit_ethernet())
        assert point_key(point, fp) == point_key(point, fp, None)

    def test_runner_does_not_cross_scenarios(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        a = self.scenario()
        b = self.scenario(
            topology={
                "factory": "edge-core",
                "params": {
                    "nic_bandwidth": 117.6e6,
                    "hosts_per_edge": 20,
                    "trunk_bandwidth": 400e6,
                },
            }
        )
        points = [SweepPoint("probe-equal", 4, 2_048, "direct", 0, 1)]
        first = runner.run_points(points, scenario=a)
        assert first.n_simulated == 1
        # The second scenario shares the point coordinates and (at n=4)
        # the topology probe, but must not be served scenario a's entry.
        second = runner.run_points(points, scenario=b)
        assert second.n_simulated == 1
        # Re-running scenario a itself *is* a cache hit.
        third = runner.run_points(points, scenario=a)
        assert third.n_cached == 1
        assert third.samples[0] == first.samples[0]

    def test_scenario_parallel_execution_matches_serial(self):
        spec = self.scenario(
            workload={"nprocs": [4, 5], "sizes": [1_024, 4_096], "reps": 1}
        )
        points = [
            SweepPoint("probe-equal", n, m, "direct", 0, 1)
            for n in (4, 5)
            for m in (1_024, 4_096)
        ]
        serial = SweepRunner(workers=1).run_points(points, scenario=spec)
        parallel = SweepRunner(workers=2).run_points(points, scenario=spec)
        assert [s.mean_time for s in serial.samples] == [
            s.mean_time for s in parallel.samples
        ]


class TestSpawnSafety:
    """User-registered plugins must not be rebuilt in spawn workers."""

    def _register_user_cluster(self):
        from repro.registry import CLUSTERS as REGISTRY, register_cluster

        @register_cluster("test-user-cluster")
        def factory():
            return gigabit_ethernet().with_overrides(name="test-user-cluster")

        return REGISTRY

    def test_user_cluster_profile_not_parallel_under_spawn(self, monkeypatch):
        registry = self._register_user_cluster()
        try:
            runner = SweepRunner(workers=4)
            point = SweepPoint("test-user-cluster", 4, 2_048, "direct", 0, 1)
            profile = registry.get("test-user-cluster")()
            monkeypatch.setattr(
                runner_mod.multiprocessing, "get_start_method", lambda: "fork"
            )
            assert runner._parallel_safe(profile, [point])
            assert runner._parallel_safe(None, [point])
            monkeypatch.setattr(
                runner_mod.multiprocessing, "get_start_method", lambda: "spawn"
            )
            assert not runner._parallel_safe(profile, [point])
            assert not runner._parallel_safe(None, [point])
        finally:
            registry.unregister("test-user-cluster")

    def test_builtin_points_stay_parallel_under_spawn(self, monkeypatch):
        runner = SweepRunner(workers=4)
        point = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        monkeypatch.setattr(
            runner_mod.multiprocessing, "get_start_method", lambda: "spawn"
        )
        assert runner._parallel_safe(None, [point])
        assert runner._parallel_safe(gigabit_ethernet(), [point])

    def test_user_scenario_not_pool_rebuilt_under_spawn(self, monkeypatch):
        from repro.registry import TOPOLOGIES, register_topology
        from repro.scenario import ScenarioSpec
        from repro.simnet.topology import single_switch

        @register_topology("test-user-switch")
        def user_switch(n_hosts, **params):
            return single_switch(n_hosts, **params)

        try:
            spec = ScenarioSpec.from_dict({
                "name": "user-topo-scenario",
                "base": "gigabit-ethernet",
                "topology": {"factory": "test-user-switch",
                             "params": {"nic_bandwidth": 1e8}},
            })
            monkeypatch.setattr(
                runner_mod.multiprocessing, "get_start_method", lambda: "spawn"
            )
            assert not SweepRunner._scenario_parallel_safe(spec)
            monkeypatch.setattr(
                runner_mod.multiprocessing, "get_start_method", lambda: "fork"
            )
            assert SweepRunner._scenario_parallel_safe(spec)
        finally:
            TOPOLOGIES.unregister("test-user-switch")
