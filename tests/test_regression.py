"""Unit + property tests for OLS/WLS/GLS regression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.regression import feasible_gls, fit_linear, gls, ols, wls
from repro.exceptions import FittingError


def linear_data(coeffs, n=12, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.column_stack(
        [np.ones(n)] + [rng.uniform(1, 100, n) for _ in coeffs[1:]]
    )
    y = X @ np.asarray(coeffs) + noise * rng.standard_normal(n)
    return X, y


class TestOls:
    def test_recovers_exact_line(self):
        X, y = linear_data([2.0, 3.0])
        fit = ols(X, y)
        assert fit.params == pytest.approx([2.0, 3.0], rel=1e-9)
        assert fit.rss == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)

    def test_residuals_shape(self):
        X, y = linear_data([1.0, 0.5], noise=0.1)
        fit = ols(X, y)
        assert fit.residuals.shape == y.shape

    def test_underdetermined_rejected(self):
        with pytest.raises(FittingError):
            ols(np.ones((1, 2)), np.array([1.0]))

    def test_rank_deficient_rejected(self):
        X = np.column_stack([np.ones(5), np.ones(5)])
        with pytest.raises(FittingError, match="rank"):
            ols(X, np.arange(5.0))

    def test_non_finite_rejected(self):
        X, y = linear_data([1.0, 1.0])
        y[0] = np.nan
        with pytest.raises(FittingError):
            ols(X, y)

    def test_length_mismatch_rejected(self):
        with pytest.raises(FittingError):
            ols(np.ones((3, 1)), np.ones(4))

    @given(
        a=st.floats(-100, 100),
        b=st.floats(-100, 100).filter(lambda v: abs(v) > 1e-3),
    )
    def test_property_exact_recovery(self, a, b):
        X, y = linear_data([a, b])
        fit = ols(X, y)
        assert fit.params[0] == pytest.approx(a, rel=1e-6, abs=1e-6)
        assert fit.params[1] == pytest.approx(b, rel=1e-6, abs=1e-6)


class TestWeighted:
    def test_wls_downweights_noisy_samples(self):
        X, y = linear_data([1.0, 2.0])
        # Corrupt one sample heavily but give it huge variance.
        y_bad = y.copy()
        y_bad[0] += 100.0
        variances = np.ones(len(y))
        variances[0] = 1e8
        fit = wls(X, y_bad, variances)
        assert fit.params == pytest.approx([1.0, 2.0], rel=1e-3)

    def test_wls_variance_validation(self):
        X, y = linear_data([1.0, 2.0])
        with pytest.raises(FittingError):
            wls(X, y, -np.ones(len(y)))
        with pytest.raises(FittingError):
            wls(X, y, np.ones(3))

    def test_zero_variances_floored_not_crashing(self):
        X, y = linear_data([1.0, 2.0])
        fit = wls(X, y, np.zeros(len(y)))
        assert np.all(np.isfinite(fit.params))

    def test_gls_same_estimate_as_wls(self):
        X, y = linear_data([1.0, 2.0], noise=0.5)
        variances = np.linspace(1, 3, len(y))
        assert gls(X, y, variances).params == pytest.approx(
            wls(X, y, variances).params
        )
        assert gls(X, y, variances).method == "gls"

    def test_fgls_converges_on_multiplicative_noise(self):
        rng = np.random.default_rng(42)
        x = np.linspace(10, 1000, 40)
        X = np.column_stack([np.ones_like(x), x])
        truth = X @ np.array([5.0, 0.8])
        y = truth * (1 + 0.05 * rng.standard_normal(len(x)))
        fit = feasible_gls(X, y)
        assert fit.params[1] == pytest.approx(0.8, rel=0.05)
        assert fit.method == "fgls"


class TestDispatch:
    def test_fit_linear_methods(self):
        X, y = linear_data([1.0, 2.0], noise=0.1)
        for method in ("ols", "fgls"):
            assert fit_linear(X, y, method=method).params.shape == (2,)
        var = np.ones(len(y))
        assert fit_linear(X, y, method="gls", variances=var).method == "gls"
        assert fit_linear(X, y, method="wls", variances=var).method == "wls"

    def test_gls_without_variances_falls_back_to_fgls(self):
        X, y = linear_data([1.0, 2.0], noise=0.1)
        assert fit_linear(X, y, method="gls").method == "fgls"

    def test_unknown_method_rejected(self):
        X, y = linear_data([1.0, 2.0])
        with pytest.raises(FittingError, match="unknown"):
            fit_linear(X, y, method="magic")

    def test_predict_on_new_rows(self):
        X, y = linear_data([2.0, 3.0])
        fit = ols(X, y)
        X_new = np.array([[1.0, 10.0]])
        assert fit.predict(X_new)[0] == pytest.approx(32.0, rel=1e-9)
